package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testJournal(t *testing.T) (*journal, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.close() })
	return j, path
}

func TestJournalMergeAndReopen(t *testing.T) {
	j, path := testJournal(t)
	spec := &JobSpec{Tenant: "a", Mixes: []string{"HM1"}, Schemes: []string{"CAMPS-MOD"}}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.append(jobRecord{Seq: 1, ID: "j1", Tenant: "a", State: StateQueued, Cells: 1, Spec: spec}))
	must(j.append(jobRecord{Seq: 2, ID: "j2", Tenant: "b", State: StateQueued, Cells: 2, Spec: spec}))
	must(j.append(jobRecord{Seq: 1, ID: "j1", Tenant: "a", State: StateRunning, Cells: 1}))
	must(j.append(jobRecord{Seq: 1, ID: "j1", Tenant: "a", State: StateDone, Cells: 1, CellsDone: 1, Ticks: 42}))
	j.close()

	re, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	recs := re.records()
	if len(recs) != 2 {
		t.Fatalf("merged records = %d; want 2", len(recs))
	}
	// Submission order preserved; latest state wins; spec survives
	// transitions that omitted it.
	if recs[0].ID != "j1" || recs[0].State != StateDone || recs[0].Ticks != 42 {
		t.Fatalf("j1 merged to %+v", recs[0])
	}
	if recs[0].Spec == nil || recs[0].Spec.Tenant != "a" {
		t.Fatalf("j1 lost its spec across transitions: %+v", recs[0].Spec)
	}
	if recs[1].ID != "j2" || recs[1].State != StateQueued {
		t.Fatalf("j2 merged to %+v", recs[1])
	}
	if re.nextSeq() != 3 {
		t.Fatalf("nextSeq = %d; want 3", re.nextSeq())
	}
}

// A crash mid-append leaves a torn final line; open must repair it by
// truncation and keep every intact record.
func TestJournalTornTailRepair(t *testing.T) {
	j, path := testJournal(t)
	if err := j.append(jobRecord{Seq: 1, ID: "j1", Tenant: "a", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	j.close()
	if err := appendRaw(path, `{"seq":2,"id":"j2","tenant":"a","st`); err != nil {
		t.Fatal(err)
	}

	re, err := openJournal(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	if got := len(re.records()); got != 1 {
		t.Fatalf("records after repair = %d; want 1", got)
	}
	// The journal must be appendable after the repair, and the repaired
	// file must not retain the torn bytes.
	if err := re.append(jobRecord{Seq: 2, ID: "j2", Tenant: "a", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	re.close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"st`) && !strings.Contains(string(data), `"state"`) {
		t.Fatalf("torn bytes survived repair:\n%s", data)
	}
	if got := strings.Count(string(data), "\n"); got != 2 {
		t.Fatalf("journal has %d lines; want 2:\n%s", got, data)
	}
}

// A corrupt record in the interior is not a torn append — it means the
// file is damaged, and silently dropping it would lose jobs.
func TestJournalCorruptInteriorRejected(t *testing.T) {
	j, path := testJournal(t)
	if err := j.append(jobRecord{Seq: 1, ID: "j1", Tenant: "a", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	j.close()
	if err := appendRaw(path, "garbage\n"); err != nil {
		t.Fatal(err)
	}
	if err := appendRaw(path, `{"seq":2,"id":"j2","tenant":"a","state":"queued"}`+"\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := openJournal(path); err == nil {
		t.Fatal("corrupt interior record accepted")
	}
}

func TestJournalCompact(t *testing.T) {
	j, path := testJournal(t)
	spec := &JobSpec{Tenant: "a", Mixes: []string{"HM1"}, Schemes: []string{"CAMPS-MOD"}}
	for i := 1; i <= 40; i++ {
		id := "j" + string(rune('a'+i%3)) // three jobs transitioning repeatedly
		if err := j.append(jobRecord{Seq: uint64(i%3 + 1), ID: id, Tenant: "a", State: StateRunning, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if j.needsCompaction() {
		t.Fatal("needsCompaction below the line threshold")
	}
	for i := 0; i < 40; i++ {
		if err := j.append(jobRecord{Seq: 1, ID: "ja", Tenant: "a", State: StateRunning, Spec: spec}); err != nil {
			t.Fatal(err)
		}
	}
	if !j.needsCompaction() {
		t.Fatal("needsCompaction false at 80 lines / 3 jobs")
	}
	before, _ := os.Stat(path)
	if err := j.compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before.Size(), after.Size())
	}
	// Post-compaction appends and reopen must both work.
	if err := j.append(jobRecord{Seq: 1, ID: "ja", Tenant: "a", State: StateDone, Ticks: 7}); err != nil {
		t.Fatal(err)
	}
	j.close()
	re, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.close()
	recs := re.records()
	if len(recs) != 3 {
		t.Fatalf("records after compact+reopen = %d; want 3", len(recs))
	}
	if recs[0].Spec == nil {
		t.Fatal("compaction dropped the spec")
	}
	for _, rec := range recs {
		if rec.ID == "ja" && (rec.State != StateDone || rec.Ticks != 7) {
			t.Fatalf("post-compaction append lost: %+v", rec)
		}
	}
}

func appendRaw(path, s string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(s); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
