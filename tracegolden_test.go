package camps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"camps"
	"camps/internal/obs"
)

// traceGoldenRun is the fixed configuration whose Chrome trace export is
// pinned in testdata/golden_trace_mx1.json: a short run with attribution
// enabled so the golden covers span duration events alongside the point
// events, through a small ring so the file stays reviewable.
func traceGoldenRun() (camps.RunConfig, *obs.Suite) {
	rc := camps.RunConfig{
		Scheme:       camps.CAMPSMOD,
		WarmupRefs:   500,
		MeasureInstr: 5_000,
		Seed:         42,
	}
	mix, _ := camps.MixByID("MX1")
	rc.Mix = mix
	suite := obs.NewSuite(256)
	suite.EnableAttribution(camps.CAMPSMOD.String())
	rc.Obs = suite
	return rc, suite
}

// TestChromeTraceGolden pins the Chrome trace_event export byte-for-byte:
// two same-seed runs must serialize identically, and the result must
// match the committed golden. Any change to event emission, field layout,
// or span rendering must update the golden deliberately:
//
//	UPDATE_GOLDEN=1 go test -run TestChromeTraceGolden .
func TestChromeTraceGolden(t *testing.T) {
	export := func() []byte {
		rc, suite := traceGoldenRun()
		if _, err := camps.RunContext(context.Background(), rc); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := suite.Tracer.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs exported different Chrome traces")
	}

	// The golden must exercise the span path: duration events ("ph":"X")
	// with microsecond durations, alongside ordinary point events.
	var doc struct {
		TraceEvents []struct {
			Phase string  `json:"ph"`
			Name  string  `json:"name"`
			DurUs float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatalf("export not valid JSON: %v", err)
	}
	spans, points := 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			spans++
			if ev.Name != "span" || ev.DurUs <= 0 {
				t.Fatalf("malformed span event: %+v", ev)
			}
		default:
			points++
		}
	}
	if spans == 0 || points == 0 {
		t.Fatalf("golden run traced %d span and %d point events; need both", spans, points)
	}

	golden := filepath.Join("testdata", "golden_trace_mx1.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s (%d span events, %d point events)", golden, spans, points)
		return
	}
	have, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden trace (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(have, a) {
		t.Errorf("Chrome trace differs from committed golden %s.\nIf the behaviour change is intentional, regenerate with UPDATE_GOLDEN=1.", golden)
	}
}
