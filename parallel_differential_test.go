package camps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"camps"
	"camps/internal/obs"
)

// TestParallelMatchesSerial is the determinism contract for the sharded
// engine (DESIGN.md §10): the exported Results of a parallel run — every
// metric, the attribution tables, the fault counters, and EventsFired —
// must be byte-identical to the serial engine's, for every worker count,
// across workload classes and fault environments. Any scheduling leak in
// the window/barrier protocol shows up here as a diff.
func TestParallelMatchesSerial(t *testing.T) {
	faults := map[string]string{
		"clean":    "",
		"linkcrc":  "linkcrc=2e-3,seed=3",
		"blackout": "stall=1e-3,stallfor=50ns,bankfail=50us,bankfor=1us,seed=3",
	}
	for _, mixID := range []string{"HM1", "LM2", "MX1"} {
		for fname, ftext := range faults {
			t.Run(mixID+"/"+fname, func(t *testing.T) {
				rc := camps.RunConfig{
					Scheme:       camps.CAMPSMOD,
					WarmupRefs:   2_000,
					MeasureInstr: 20_000,
					Seed:         42,
				}
				mix, err := camps.MixByID(mixID)
				if err != nil {
					t.Fatal(err)
				}
				rc.Mix = mix
				if ftext != "" {
					spec, err := camps.ParseFaultSpec(ftext)
					if err != nil {
						t.Fatal(err)
					}
					rc.Faults = spec
				}

				// Each run gets its own obs suite with attribution on, so
				// the export also covers the per-shard ledger/span merge
				// paths (a run reusing a suite would accumulate across
				// runs and poison the comparison).
				run := func(workers int) (camps.Results, []byte) {
					prc := rc
					prc.Workers = workers
					suite := obs.NewSuite(1024)
					suite.EnableAttribution(prc.Scheme.String())
					prc.Obs = suite
					res, err := camps.RunContext(context.Background(), prc)
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					buf, err := json.MarshalIndent(res, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					return res, buf
				}

				serial, want := run(1)
				for _, workers := range []int{2, 4, 8} {
					par, got := run(workers)
					if !bytes.Equal(want, got) {
						t.Errorf("workers=%d diverges from serial:\n%s",
							workers, firstDiff(want, got))
					}
					if par.EventsFired != serial.EventsFired {
						t.Errorf("workers=%d: EventsFired %d, serial %d",
							workers, par.EventsFired, serial.EventsFired)
					}
				}
			})
		}
	}
}

// firstDiff renders the neighbourhood of the first byte where a and b
// disagree, which localizes a divergence inside a large JSON export.
func firstDiff(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	end := func(s []byte) int {
		if i+200 < len(s) {
			return i + 200
		}
		return len(s)
	}
	return fmt.Sprintf("first divergence at byte %d\nserial: ...%s...\nparallel: ...%s...",
		i, a[lo:end(a)], b[lo:end(b)])
}
