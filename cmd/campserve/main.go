// Command campserve runs the CAMPS simulation-as-a-service daemon: an
// HTTP front end (internal/serve) over the campaign orchestrator
// (internal/exp), with admission control, per-tenant quotas, load
// shedding, a deterministic result cache, and crash-safe job recovery.
//
// The daemon journals every job to -data; killing it (even with SIGKILL)
// and restarting on the same directory resumes interrupted campaigns
// from their cell checkpoints. SIGTERM/SIGINT trigger a graceful drain:
// admission closes, running jobs get -drain-timeout to finish, and
// whatever is still running is checkpointed for the next start.
//
// Usage:
//
//	campserve -addr :8080 -data /var/lib/campserve
//	campserve -addr 127.0.0.1:9000 -workers 8 -quota-ticks 1e12
//	campserve -smoke        # self-test against an ephemeral instance
//
// See docs/SERVING.md for the HTTP API.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"camps/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campserve: ")

	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		data         = flag.String("data", "campserve-data", "data directory (journal + cell checkpoints)")
		workers      = flag.Int("workers", 0, "concurrent cell simulations daemon-wide (0 = NumCPU)")
		maxActive    = flag.Int("max-active", 0, "concurrently running jobs (0 = default 8)")
		maxQueue     = flag.Int("max-queue", 0, "bounded wait queue across tenants (0 = default 64)")
		maxCells     = flag.Int("max-cells", 0, "largest campaign one job may expand to (0 = default 512)")
		rate         = flag.Float64("rate", 0, "admission token-bucket rate, jobs/sec (0 = default 50)")
		burst        = flag.Int("burst", 0, "admission token-bucket burst (0 = default 100)")
		shedStart    = flag.Float64("shed-start", 0, "queue-load fraction where priority shedding begins (0 = default 0.5)")
		quotaCells   = flag.Int("quota-inflight", 0, "default per-tenant in-flight cell cap (0 = default 8)")
		quotaJobs    = flag.Int("quota-jobs", 0, "default per-tenant queued-job cap (0 = default 16)")
		quotaTicks   = flag.Float64("quota-ticks", 0, "default per-tenant simulated-tick budget in ps (0 = unlimited)")
		instr        = flag.Uint64("instr", 200_000, "default measured instructions per cell")
		warmup       = flag.Uint64("warmup", 0, "default warmup references per cell (0 = camps default)")
		cellTimeout  = flag.Duration("cell-timeout", 0, "wall-clock budget per cell attempt (0 = none)")
		retries      = flag.Int("retries", 1, "extra attempts for transiently failing cells")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGTERM")
		cacheSize    = flag.Int("cache", 0, "result cache entries (0 = default 4096)")
		smoke        = flag.Bool("smoke", false, "run the self-test against an ephemeral instance and exit")
	)
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			log.Fatalf("smoke: %v", err)
		}
		fmt.Println("campserve smoke: OK")
		return
	}

	cfg := serve.Config{
		DataDir:        *data,
		Workers:        *workers,
		MaxActiveJobs:  *maxActive,
		MaxQueue:       *maxQueue,
		MaxCellsPerJob: *maxCells,
		RatePerSec:     *rate,
		Burst:          *burst,
		ShedStart:      *shedStart,
		DefaultQuota: serve.Quota{
			MaxInFlightCells: *quotaCells,
			MaxQueuedJobs:    *quotaJobs,
			TickBudget:       int64(*quotaTicks),
		},
		Instr:        *instr,
		Warmup:       *warmup,
		CellTimeout:  *cellTimeout,
		Retries:      *retries,
		DrainTimeout: *drainTimeout,
		CacheSize:    *cacheSize,
		Logf:         log.Printf,
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on %s (data %s)", ln.Addr(), *data)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx, ln); err != nil {
		log.Fatal(err)
	}
	log.Printf("drained; bye")
}

// runSmoke boots an ephemeral daemon on a loopback port and a temp data
// dir, drives a tiny real campaign through the full HTTP surface, and
// verifies the serving contract end to end: admission, completion, SSE
// terminal events, and the determinism claim behind the result cache —
// a resubmitted job must be served from cache with a byte-identical
// results document.
func runSmoke() error {
	dir, err := os.MkdirTemp("", "campserve-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := serve.New(serve.Config{
		DataDir: dir,
		Instr:   4_000,
		Warmup:  500,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	spec := `{"tenant":"smoke","mixes":["HM2"],"schemes":["CAMPS-MOD"],"seeds":[1]}`
	first, err := smokeJob(base, spec)
	if err != nil {
		stop()
		return err
	}
	second, err := smokeJob(base, spec) // identical spec: must hit the cache
	if err != nil {
		stop()
		return err
	}
	if second.status.Cached != second.status.Cells {
		stop()
		return fmt.Errorf("resubmitted job ran %d cells fresh; want all %d from cache",
			second.status.Cells-second.status.Cached, second.status.Cells)
	}
	if !bytes.Equal(first.cells, second.cells) {
		stop()
		return fmt.Errorf("cache hit produced different results document:\n%s\nvs\n%s", first.cells, second.cells)
	}

	// The SSE stream of a finished job must still deliver a terminal
	// event (backlog replay).
	events, err := httpGet(base + "/v1/jobs/" + first.status.ID + "/events")
	if err != nil {
		stop()
		return err
	}
	if !bytes.Contains(events, []byte("event: terminal")) {
		stop()
		return fmt.Errorf("events stream missing terminal event:\n%s", events)
	}

	stop() // SIGTERM equivalent: graceful drain
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		return fmt.Errorf("daemon did not drain within 30s")
	}
}

type smokeResult struct {
	status struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Reason string `json:"reason"`
		Cells  int    `json:"cells"`
		Cached int    `json:"cached"`
	}
	cells json.RawMessage // the "cells" array of the results document
}

// smokeJob submits spec, polls it to completion, and fetches its results.
func smokeJob(base, spec string) (*smokeResult, error) {
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, body)
	}
	var r smokeResult
	if err := json.Unmarshal(body, &r.status); err != nil {
		return nil, fmt.Errorf("submit response: %w (%s)", err, body)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		b, err := httpGet(base + "/v1/jobs/" + r.status.ID)
		if err != nil {
			return nil, err
		}
		if err := json.Unmarshal(b, &r.status); err != nil {
			return nil, err
		}
		if r.status.State == "done" {
			break
		}
		if r.status.State == "failed" || r.status.State == "cancelled" {
			return nil, fmt.Errorf("job %s ended %s: %s", r.status.ID, r.status.State, r.status.Reason)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s still %s after 2m", r.status.ID, r.status.State)
		}
		time.Sleep(100 * time.Millisecond)
	}

	b, err := httpGet(base + "/v1/jobs/" + r.status.ID + "/results")
	if err != nil {
		return nil, err
	}
	var doc struct {
		Cells json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, err
	}
	r.cells = doc.Cells
	return &r, nil
}

func httpGet(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}
