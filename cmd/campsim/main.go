// Command campsim runs one workload mix under one prefetching scheme and
// prints detailed statistics: per-core IPC and MPKI, row-buffer behaviour,
// prefetch-buffer effectiveness, AMAT, and the energy breakdown. With
// -metrics-out / -trace-out the run also produces machine-readable
// telemetry (epoch metric snapshots as JSONL, simulator events as a
// Chrome trace_event document); see docs/OBSERVABILITY.md.
//
// Usage:
//
//	campsim -mix HM1 -scheme CAMPS-MOD [-instr 400000] [-warmup 30000] [-seed 1]
//	campsim -mix HM1 -metrics-out m.jsonl -trace-out t.json -epoch-table
//	campsim -faults linkcrc=1e-4,stall=5e-5 -check    # degraded memory
//	campsim -trace a.trace,b.trace,...                # replay file traces
//	campsim -pprof localhost:6060 ...   # live pprof + runtime metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"camps"
	"camps/internal/cliutil"
	"camps/internal/exp"
	"camps/internal/obs"
	"camps/internal/report"
	"camps/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campsim: ")

	var (
		mixID      = flag.String("mix", "HM1", "workload mix (HM1-4, LM1-4, MX1-4, DC1-2)")
		scheme     = flag.String("scheme", "CAMPS-MOD", "prefetching scheme ("+strings.Join(camps.SchemeNames(), ", ")+")")
		instr      = flag.Uint64("instr", 400_000, "measured instructions per core")
		warmup     = flag.Uint64("warmup", 50_000, "cache-warmup references per core")
		seed       = flag.Uint64("seed", 1, "trace seed")
		vaults     = flag.Bool("vaults", false, "print the per-vault load table")
		metricsOut = flag.String("metrics-out", "", "write epoch metric snapshots as JSONL to this file")
		traceOut   = flag.String("trace-out", "", "write simulator events to this file (Chrome trace_event JSON; a .jsonl extension selects JSONL)")
		traceBuf   = flag.Int("trace-buf", obs.DefaultTraceCap, "event ring-buffer capacity (oldest events overwritten)")
		epochCyc   = flag.Int64("epoch", 0, "CPU cycles between metric snapshots (0 = default 5us of simulated time)")
		epochTable = flag.Bool("epoch-table", false, "print the per-epoch conflict/prefetch table")
		attr       = flag.Bool("attr", false, "print the request-latency attribution and prefetch-efficacy tables")
		attrOut    = flag.String("attr-out", "", "write the attribution summary as JSON to this file (implies attribution)")
		serveAddr  = flag.String("serve-metrics", "", "stream epoch metric snapshots as server-sent events on this address (e.g. localhost:6061)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); the simulation halts within one epoch of expiry")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")
		faultSpec  = flag.String("faults", "", "deterministic fault-injection spec; "+camps.FaultGrammar())
		workers    = flag.Int("workers", 1, "simulation worker goroutines (1 = serial engine; N>1 shards the vaults over N-1 workers, bit-identical results)")
		check      = flag.Bool("check", false, "run the epoch invariant checker (abort with a typed error on violation)")
		traceIn    = flag.String("trace", "", "comma-separated per-core trace files replayed instead of -mix (one path serves every core)")
		version    = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cliutil.PrintVersion(os.Stdout, "campsim")
		return
	}
	if *pprofAddr != "" {
		cliutil.StartPprof(*pprofAddr, log.Printf)
	}

	mix, err := camps.AnyMixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	s, err := camps.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}

	sys := camps.DefaultSystem()
	rc := camps.RunConfig{
		System:          sys,
		Scheme:          s,
		Mix:             mix,
		Seed:            *seed,
		WarmupRefs:      *warmup,
		MeasureInstr:    *instr,
		CheckInvariants: *check,
		Workers:         *workers,
	}
	if *faultSpec != "" {
		spec, err := camps.ParseFaultSpec(*faultSpec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		rc.Faults = spec
	}
	benchNames := mix.Benchmarks
	if *traceIn != "" {
		readers, names, closeAll, err := openTraces(*traceIn, sys.Processor.Cores)
		if err != nil {
			log.Fatalf("-trace: %v", err)
		}
		defer closeAll()
		rc.Readers = readers
		rc.Mix = camps.Mix{}
		benchNames = names
	}
	var suite *obs.Suite
	if *metricsOut != "" || *traceOut != "" || *epochTable || *attr || *attrOut != "" || *serveAddr != "" {
		suite = obs.NewSuite(*traceBuf)
		rc.Obs = suite
		if *epochCyc > 0 {
			rc.EpochInterval = sys.CPUClock().Cycles(*epochCyc)
		}
		if *attr || *attrOut != "" {
			suite.EnableAttribution(s.String())
		}
		if *serveAddr != "" {
			if srv, ok := obs.StartStream(*serveAddr, log.Printf); ok {
				suite.OnSnapshot = srv.Publish
			}
		}
	}

	// Ctrl-C (or -timeout expiry) cancels the run: the engine halts within
	// one epoch of simulated time instead of draining the whole simulation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := camps.RunContext(ctx, rc)
	if err != nil {
		log.Fatal(err)
	}
	writeTelemetry(suite, *metricsOut, *traceOut)
	if suite != nil && suite.Tracer.Dropped() > 0 {
		log.Printf("warning: event ring overwrote %d trace events; raise -trace-buf for full coverage",
			suite.Tracer.Dropped())
	}
	if *attrOut != "" {
		writeAttribution(*attrOut, res)
	}
	if *epochTable {
		t := report.Timeseries(suite.Snapshots(), []string{
			"vault.row_conflicts", "vault.row_hits", "vault.buffer_hits",
			"vault.fetches_issued", "mshr.stalls",
		}, true)
		fmt.Println(t.String())
	}

	source := "mix " + mix.ID
	if *traceIn != "" {
		source = "trace replay"
	}
	w := os.Stdout
	fmt.Fprintf(w, "%s under %v (seed %d, %d instr/core)\n\n", source, s, *seed, *instr)

	fmt.Fprintln(w, "per-core performance:")
	for core, ipc := range res.IPC {
		fmt.Fprintf(w, "  core %d  %-9s IPC %.4f  MPKI %7.2f\n",
			core, benchNames[core], ipc, res.MPKI[core])
	}
	fmt.Fprintf(w, "  geomean IPC %.4f\n\n", res.GeoMeanIPC)

	vs := &res.VaultStats
	demand := vs.BufferHits.Value() + vs.BufferMisses.Value()
	fmt.Fprintln(w, "memory system:")
	fmt.Fprintf(w, "  demand requests      %12d (%d reads, %d writes)\n",
		demand, vs.DemandReads.Value(), vs.DemandWrites.Value())
	fmt.Fprintf(w, "  prefetch-buffer hits %12d (%.1f%% of demand)\n",
		vs.BufferHits.Value(), res.BufferHitRate*100)
	fmt.Fprintf(w, "  row-buffer outcomes  %12d hits / %d misses / %d conflicts\n",
		res.RowHits, res.RowMisses, res.RowConflicts)
	fmt.Fprintf(w, "  conflict rate        %12.2f%% of bank accesses\n", res.RowConflictRate*100)
	fmt.Fprintf(w, "  mean read latency    %12.1f ns (p50 %.0f / p95 %.0f / p99 %.0f)\n",
		res.AMATps/1000, res.AMATp50ps/1000, res.AMATp95ps/1000, res.AMATp99ps/1000)
	fmt.Fprintf(w, "  simulated time       %12.3f us\n\n", float64(res.ElapsedSim)/1e6)

	fmt.Fprintln(w, "prefetching:")
	fmt.Fprintf(w, "  row fetches issued   %12d\n", res.PrefetchesIssued)
	fmt.Fprintf(w, "  row accuracy         %12.1f%%\n", res.PrefetchAccuracy*100)
	fmt.Fprintf(w, "  line accuracy        %12.1f%%\n", res.LineAccuracy*100)
	fmt.Fprintf(w, "  timeliness           %12.1f ns to first use\n", res.PrefetchTimeliness/1000)
	fmt.Fprintf(w, "  buffer evictions     %12d (%d written back)\n",
		res.BufferStats.Evictions, vs.RowWritebacks.Value())

	if fr := report.FaultReport(res.Faults); fr != "" {
		fmt.Fprintf(w, "\n%s", fr)
	}

	if *attr {
		if ar := report.Attribution(res.Attribution); ar != "" {
			fmt.Fprintf(w, "\n%s", ar)
		}
	}

	if *vaults {
		fmt.Fprintln(w, "\nper-vault load:")
		fmt.Fprintf(w, "  %5s %10s %10s %10s %10s %10s\n",
			"vault", "demand", "bufHits", "conflicts", "fetches", "refreshes")
		var maxD, minD uint64
		for i, v := range res.PerVault {
			if i == 0 || v.Demand > maxD {
				maxD = v.Demand
			}
			if i == 0 || v.Demand < minD {
				minD = v.Demand
			}
			fmt.Fprintf(w, "  %5d %10d %10d %10d %10d %10d\n",
				i, v.Demand, v.BufferHits, v.Conflicts, v.Fetches, v.Refreshes)
		}
		if minD > 0 {
			fmt.Fprintf(w, "  demand imbalance (max/min): %.2fx\n", float64(maxD)/float64(minD))
		}
	}

	e := res.Energy
	fmt.Fprintln(w, "\nenergy (mJ):")
	for _, part := range []struct {
		name string
		pj   float64
	}{
		{"activate", e.Activate}, {"precharge", e.Precharge},
		{"read", e.Read}, {"write", e.Write},
		{"row fetch", e.RowFetch}, {"row store", e.RowStore},
		{"refresh", e.Refresh}, {"pf buffer", e.Buffer},
		{"links", e.Link}, {"background", e.Background},
	} {
		fmt.Fprintf(w, "  %-10s %10.4f\n", part.name, part.pj/1e9)
	}
	fmt.Fprintf(w, "  %-10s %10.4f\n", "total", e.Total()/1e9)
}

// writeAttribution exports the run's attribution summary (per-cause
// latency breakdown, prefetch efficacy ledger, per-vault conflict heat)
// as indented JSON, atomically like the other telemetry exports.
func writeAttribution(path string, res camps.Results) {
	if res.Attribution == nil {
		log.Printf("-attr-out: run produced no attribution summary")
		return
	}
	data, err := json.MarshalIndent(res.Attribution, "", "  ")
	if err != nil {
		log.Fatalf("attribution export: %v", err)
	}
	if err := exp.AtomicWriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("write %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote attribution summary to %s\n", path)
}

// openTraces opens the comma-separated trace paths as per-core readers.
// One path is opened once per core (each core gets an independent file
// handle, so every stream starts at the beginning); otherwise the count
// must match the core count exactly.
func openTraces(arg string, cores int) (readers []trace.Reader, names []string, closeAll func(), err error) {
	paths := strings.Split(arg, ",")
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	switch {
	case len(paths) == 1:
		p := paths[0]
		paths = make([]string, cores)
		for i := range paths {
			paths[i] = p
		}
	case len(paths) != cores:
		return nil, nil, nil, fmt.Errorf("%d trace files for %d cores (give one, or one per core)", len(paths), cores)
	}

	var files []*os.File
	closeAll = func() {
		for _, f := range files {
			f.Close()
		}
	}
	for core, p := range paths {
		f, ferr := os.Open(p)
		if ferr != nil {
			closeAll()
			return nil, nil, nil, ferr
		}
		files = append(files, f)
		r, rerr := trace.OpenReader(f) // sniffs fixed-v1 vs compact-v2, rejects foreign files
		if rerr != nil {
			closeAll()
			return nil, nil, nil, fmt.Errorf("core %d trace %s: %w", core, p, rerr)
		}
		readers = append(readers, r)
		names = append(names, filepath.Base(p))
	}
	return readers, names, closeAll, nil
}

// writeTelemetry exports the run's observability data: metric snapshots
// as JSONL and the event trace as Chrome trace_event JSON (or JSONL when
// the trace path ends in .jsonl). Both land atomically (write-temp +
// fsync + rename), so a crash mid-export never leaves a torn file where
// a previous run's good one stood.
func writeTelemetry(suite *obs.Suite, metricsPath, tracePath string) {
	if suite == nil {
		return
	}
	if metricsPath != "" {
		var buf bytes.Buffer
		if err := suite.WriteMetrics(&buf); err != nil {
			log.Fatalf("metrics export: %v", err)
		}
		if err := exp.AtomicWriteFile(metricsPath, buf.Bytes(), 0o644); err != nil {
			log.Fatalf("write %s: %v", metricsPath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d metric snapshots to %s\n", len(suite.Snapshots()), metricsPath)
	}
	if tracePath != "" {
		var buf bytes.Buffer
		var err error
		if strings.HasSuffix(tracePath, ".jsonl") {
			err = suite.Tracer.WriteJSONL(&buf)
		} else {
			err = suite.Tracer.WriteChromeTrace(&buf)
		}
		if err != nil {
			log.Fatalf("trace export: %v", err)
		}
		if err := exp.AtomicWriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			log.Fatalf("write %s: %v", tracePath, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events (%d emitted, %d overwritten) to %s\n",
			suite.Tracer.Len(), suite.Tracer.Total(), suite.Tracer.Dropped(), tracePath)
	}
}
