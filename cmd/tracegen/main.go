// Command tracegen writes a synthetic benchmark trace to a file in the
// binary trace format, for inspection or replay through campsim-style
// custom runs.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trace [-seed 7] [-base 0]
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"camps/internal/cliutil"
	"camps/internal/trace"
	"camps/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		bench   = flag.String("bench", "", "benchmark name (see -list)")
		n       = flag.Int64("n", 1_000_000, "number of records")
		out     = flag.String("o", "", "output file (default <bench>.trace)")
		seed    = flag.Uint64("seed", 1, "generator seed")
		base    = flag.Uint64("base", 0, "base physical address")
		compact = flag.Bool("compact", false, "write the varint-delta v2 format (~4x smaller)")
		list    = flag.Bool("list", false, "list available benchmarks and exit")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cliutil.PrintVersion(os.Stdout, "tracegen")
		return
	}
	if *list {
		names := append(workload.Names(), workload.ExtensionNames()...)
		for _, name := range names {
			b, _ := workload.GetAny(name)
			fmt.Printf("%-9s %s  footprint %4d MiB  streams %d  conflict-group %d@%.0f%%\n",
				name, b.Class, b.Profile.FootprintBytes>>20, b.Profile.Streams,
				b.Profile.ConflictStreams, b.Profile.ConflictProb*100)
		}
		return
	}
	if *bench == "" {
		log.Fatal("need -bench (or -list)")
	}
	b, err := workload.GetAny(*bench)
	if err != nil {
		log.Fatalf("benchmark %q: %v", *bench, err)
	}
	gen, err := trace.NewGenerator(b.Profile, *base, *seed)
	if err != nil {
		log.Fatalf("benchmark %q profile: %v", *bench, err)
	}

	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("create %s: %v", path, err)
	}
	// A partial trace is worse than none: later replays would see silent
	// truncation. Any failure below removes the torn output before exiting
	// non-zero.
	fail := func(format string, args ...any) {
		f.Close()
		os.Remove(path)
		log.Fatalf(format, args...)
	}
	type recordWriter interface {
		Write(trace.Record) error
		Flush() error
		Count() uint64
	}
	var w recordWriter = trace.NewWriter(f)
	if *compact {
		w = trace.NewCompactWriter(f)
	}
	for i := int64(0); i < *n; i++ {
		rec, err := gen.Next()
		if err != nil {
			fail("generate %s record %d: %v", *bench, i, err)
		}
		if err := w.Write(rec); err != nil {
			fail("write %s record %d: %v", path, i, err)
		}
	}
	if err := w.Flush(); err != nil {
		fail("flush %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fail("close %s: %v", path, err)
	}
	fmt.Printf("wrote %d records (%s) to %s\n", w.Count(), *bench, path)
}
