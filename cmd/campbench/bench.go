// Benchmark mode: campbench -bench runs a fixed set of simulation
// scenarios, measures simulator throughput (not the simulated system's
// performance), and emits a machine-readable BENCH_<date>.json. With
// -bench-baseline it additionally compares against a committed baseline
// and exits non-zero on a >15% events/sec regression on any scenario —
// the CI gate that keeps the event hot path from quietly slowing down.
//
// Methodology: each scenario is one complete camps.Run (warmup + measured
// region). It runs -bench-count times and the best run (highest events/sec)
// is reported, which discards scheduler noise and cold-cache effects the
// same way `go test -bench` users take the best of -count runs. Allocation
// figures come from runtime.MemStats deltas around the same run; nothing
// else allocates concurrently (the parallel scenarios' worker goroutines
// are part of the run), so the deltas are exact.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"camps"
)

// benchSchema versions the BENCH_*.json layout.
const benchSchema = 1

// regressionTolerance is the fractional events/sec loss versus the
// baseline that fails the gate.
const regressionTolerance = 0.15

// benchScenario is one named measurement configuration. The set spans the
// simulator's distinct hot-path mixes: the default CAMPS-MOD system, the
// prefetch-free path, and a latency-bound low-memory-intensity workload.
type benchScenario struct {
	Name    string
	Mix     string
	Scheme  camps.Scheme
	Instr   uint64
	Warmup  uint64
	Workers int // 0/1 = serial engine; N>1 = sharded parallel engine
}

func benchScenarios() []benchScenario {
	return []benchScenario{
		{Name: "default", Mix: "MX1", Scheme: camps.CAMPSMOD, Instr: 200_000, Warmup: 20_000},
		{Name: "noprefetch", Mix: "HM1", Scheme: camps.NONE, Instr: 200_000, Warmup: 20_000},
		{Name: "heavy-lm", Mix: "LM2", Scheme: camps.CAMPSMOD, Instr: 200_000, Warmup: 20_000},
		// The set-dueling meta-engine runs every candidate's predictor on
		// the full demand stream, so it bounds the engine-side overhead of
		// the registry redesign.
		{Name: "hybrid", Mix: "MX1", Scheme: camps.HYBRID, Instr: 200_000, Warmup: 20_000},
		// Worker-count matrix on the default scenario: the same simulation
		// on the sharded parallel engine. Results are bit-identical to
		// "default" (the differential suite asserts it); these rows track
		// the throughput scaling of the shard runtime itself.
		{Name: "parallel-w2", Mix: "MX1", Scheme: camps.CAMPSMOD, Instr: 200_000, Warmup: 20_000, Workers: 2},
		{Name: "parallel-w4", Mix: "MX1", Scheme: camps.CAMPSMOD, Instr: 200_000, Warmup: 20_000, Workers: 4},
		{Name: "parallel-w8", Mix: "MX1", Scheme: camps.CAMPSMOD, Instr: 200_000, Warmup: 20_000, Workers: 8},
	}
}

// benchResult is one scenario's measurement as serialized to the JSON
// file. WallNS and Allocs are per op, where one op is the full scenario
// run (the `go test -bench` convention).
type benchResult struct {
	Name         string  `json:"name"`
	Mix          string  `json:"mix"`
	Scheme       string  `json:"scheme"`
	Workers      int     `json:"workers,omitempty"`
	Instructions uint64  `json:"instructions"`
	Events       uint64  `json:"events"`
	SimPS        int64   `json:"sim_ps"`
	WallNS       int64   `json:"wall_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs_per_op"`
	Bytes        uint64  `json:"bytes_per_op"`
}

// benchFile is the BENCH_<date>.json document.
type benchFile struct {
	Schema    int           `json:"schema"`
	Date      string        `json:"date"`
	GoVersion string        `json:"go"`
	CPUs      int           `json:"cpus"`
	Count     int           `json:"count"`
	Scenarios []benchResult `json:"scenarios"`
}

// runBenchmarks executes every scenario (filtered to names containing
// match, when non-empty) count times, reports the best run of each,
// writes outPath, and compares against baselinePath when given. It
// returns false if the regression gate failed.
func runBenchmarks(outPath, baselinePath, match string, count int, seed uint64) bool {
	if count < 1 {
		count = 1
	}
	doc := benchFile{
		Schema:    benchSchema,
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		Count:     count,
	}
	for _, sc := range benchScenarios() {
		if match != "" && !strings.Contains(sc.Name, match) {
			continue
		}
		best, err := benchOne(sc, count, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "campbench: scenario %s: %v\n", sc.Name, err)
			return false
		}
		fmt.Printf("%-12s %12.0f events/sec  %8.1f ms/op  %8d allocs/op  %8.1f KB/op\n",
			sc.Name, best.EventsPerSec, float64(best.WallNS)/1e6, best.Allocs, float64(best.Bytes)/1024)
		doc.Scenarios = append(doc.Scenarios, best)
	}

	if outPath != "" {
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "campbench: %v\n", err)
			return false
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(outPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "campbench: %v\n", err)
			return false
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}

	if baselinePath == "" {
		return true
	}
	return compareBaseline(doc, baselinePath)
}

// benchOne measures one scenario count times and returns the best run.
func benchOne(sc benchScenario, count int, seed uint64) (benchResult, error) {
	mix, err := camps.AnyMixByID(sc.Mix)
	if err != nil {
		return benchResult{}, err
	}
	rc := camps.RunConfig{
		Scheme:       sc.Scheme,
		Mix:          mix,
		Seed:         seed,
		WarmupRefs:   sc.Warmup,
		MeasureInstr: sc.Instr,
		Workers:      sc.Workers,
	}
	var best benchResult
	for i := 0; i < count; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		t0 := time.Now()
		res, err := camps.RunContext(context.Background(), rc)
		wall := time.Since(t0)
		if err != nil {
			return benchResult{}, err
		}
		runtime.ReadMemStats(&after)
		r := benchResult{
			Name:         sc.Name,
			Mix:          sc.Mix,
			Scheme:       sc.Scheme.String(),
			Workers:      sc.Workers,
			Instructions: res.Instructions,
			Events:       res.EventsFired,
			SimPS:        int64(res.ElapsedSim),
			WallNS:       wall.Nanoseconds(),
			EventsPerSec: float64(res.EventsFired) / wall.Seconds(),
			Allocs:       after.Mallocs - before.Mallocs,
			Bytes:        after.TotalAlloc - before.TotalAlloc,
		}
		if i == 0 || r.EventsPerSec > best.EventsPerSec {
			best = r
		}
	}
	return best, nil
}

// compareBaseline checks every scenario present in both files against the
// regression tolerance. Missing or extra scenarios are reported but do not
// fail the gate (they appear when the scenario set evolves).
func compareBaseline(cur benchFile, path string) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "campbench: baseline: %v\n", err)
		return false
	}
	var base benchFile
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "campbench: baseline %s: %v\n", path, err)
		return false
	}
	byName := make(map[string]benchResult, len(base.Scenarios))
	for _, r := range base.Scenarios {
		byName[r.Name] = r
	}
	ok := true
	for _, r := range cur.Scenarios {
		b, found := byName[r.Name]
		if !found {
			fmt.Fprintf(os.Stderr, "campbench: scenario %s not in baseline %s (skipped)\n", r.Name, path)
			continue
		}
		ratio := r.EventsPerSec / b.EventsPerSec
		verdict := "ok"
		if ratio < 1-regressionTolerance {
			verdict = "REGRESSION"
			ok = false
		}
		fmt.Printf("%-12s baseline %12.0f ev/s  now %12.0f ev/s  %+6.1f%%  %s\n",
			r.Name, b.EventsPerSec, r.EventsPerSec, (ratio-1)*100, verdict)
	}
	if !ok {
		fmt.Fprintf(os.Stderr, "campbench: events/sec regressed more than %.0f%% against %s\n",
			regressionTolerance*100, path)
	}
	return ok
}
