// Command campbench regenerates the CAMPS paper's evaluation: it runs the
// full (12 mixes × 5 schemes) grid and prints Figures 5 through 9 as text
// tables (or CSV), plus the per-class summary the paper quotes in prose.
//
// Usage:
//
//	campbench                 # all figures, full grid
//	campbench -fig 6          # one figure
//	campbench -csv            # machine-readable output
//	campbench -instr 200000   # faster, lower-fidelity run
//
// Benchmark mode measures the simulator itself instead of the simulated
// system (see bench.go):
//
//	campbench -bench                               # measure, write BENCH_<date>.json
//	campbench -bench -bench-baseline BENCH_x.json  # gate against a baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"camps/internal/cliutil"
	"camps/internal/harness"
	"camps/internal/obs"
	"camps/internal/plot"
	"camps/internal/report"
	"camps/internal/stats"
)

// flagSet reports whether the named flag was given explicitly.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campbench: ")

	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (5-9); 0 = all")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		chart      = flag.Bool("plot", false, "render figures as ASCII bar charts")
		reportPath = flag.String("report", "", "also write a Markdown reproduction report to this file")
		instr      = flag.Uint64("instr", 400_000, "measured instructions per core")
		warmup     = flag.Uint64("warmup", 50_000, "cache-warmup references per core")
		seed       = flag.Uint64("seed", 1, "trace seed")
		seeds      = flag.Int("seeds", 1, "run this many seeds (seed, seed+1, ...) and average the figures")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU)")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and runtime metrics on this address (e.g. localhost:6060)")
		serveAddr  = flag.String("serve-metrics", "", "stream one snapshot per finished grid cell as server-sent events on this address")
		version    = flag.Bool("version", false, "print build information and exit")

		bench         = flag.Bool("bench", false, "measure simulator throughput and emit a BENCH_<date>.json instead of figures")
		benchOut      = flag.String("bench-out", "", "benchmark output file (default BENCH_<date>.json; empty in gate-only runs to skip writing: use -bench-out \"\" explicitly)")
		benchCount    = flag.Int("bench-count", 3, "runs per benchmark scenario; the best is reported")
		benchBaseline = flag.String("bench-baseline", "", "baseline BENCH_*.json to gate against (>15% events/sec loss fails)")
		benchMatch    = flag.String("bench-match", "", "run only scenarios whose name contains this substring")
	)
	flag.Parse()
	if *version {
		cliutil.PrintVersion(os.Stdout, "campbench")
		return
	}
	if *bench {
		out := *benchOut
		if out == "" && !flagSet("bench-out") {
			out = "BENCH_" + time.Now().Format("2006-01-02") + ".json"
		}
		if !runBenchmarks(out, *benchBaseline, *benchMatch, *benchCount, *seed) {
			os.Exit(1)
		}
		return
	}
	if *pprofAddr != "" {
		cliutil.StartPprof(*pprofAddr, log.Printf)
	}
	if *fig != 0 && (*fig < 5 || *fig > 9) {
		log.Fatalf("figure %d out of range: the paper has figures 5-9", *fig)
	}
	if *seeds < 1 {
		log.Fatal("-seeds must be at least 1")
	}

	opts := harness.Options{
		Seed:         *seed,
		WarmupRefs:   *warmup,
		MeasureInstr: *instr,
		Parallelism:  *parallel,
	}
	var stream *obs.StreamServer
	if *serveAddr != "" {
		stream, _ = obs.StartStream(*serveAddr, log.Printf)
	}
	if !*quiet || stream != nil {
		progress := !*quiet
		opts.Progress = func(cr harness.CellResult) {
			if progress {
				fmt.Fprintf(os.Stderr, "done %-4s %-9v ipc=%.4f amat=%.1fns acc=%.2f\n",
					cr.Mix, cr.Scheme, cr.Results.GeoMeanIPC, cr.Results.AMATps/1000, cr.Results.LineAccuracy)
			}
			// Each finished grid cell becomes one synthetic snapshot on the
			// stream: headline results keyed like the simulator's own
			// metrics, tagged mix/scheme so dashboards can pivot on both.
			stream.Publish(obs.Snapshot{
				AtPs: int64(cr.Results.ElapsedSim),
				Tag:  fmt.Sprintf("%s/%v", cr.Mix, cr.Scheme),
				Gauges: map[string]float64{
					"bench.geomean_ipc":   cr.Results.GeoMeanIPC,
					"bench.amat_ps":       cr.Results.AMATps,
					"bench.line_accuracy": cr.Results.LineAccuracy,
					"bench.conflict_rate": cr.Results.RowConflictRate,
				},
			})
		}
	}

	seedList := make([]uint64, *seeds)
	for i := range seedList {
		seedList[i] = *seed + uint64(i)
	}
	grids, err := harness.RunSeeds(context.Background(), opts, seedList)
	if err != nil {
		log.Fatal(err)
	}
	grid := grids[0]

	figNums := []int{5, 6, 7, 8, 9}
	if *fig != 0 {
		figNums = []int{*fig}
	}
	var tables []*stats.Table
	for _, n := range figNums {
		t, err := harness.FigureAcrossSeeds(grids, n)
		if err != nil {
			log.Fatal(err)
		}
		tables = append(tables, t)
	}

	for i, t := range tables {
		switch {
		case *csv:
			fmt.Println(t.Title)
			fmt.Print(t.CSV())
		case *chart:
			po := plot.Options{Width: 40}
			if figNums[i] == 5 || figNums[i] == 9 {
				po.UseBaseline = true
				po.Baseline = 1.0
			}
			fmt.Println(plot.Bars(t, po))
		default:
			fmt.Println(t.String())
		}
	}

	if *fig == 0 || *fig == 5 {
		f5 := tables[0]
		lastCol := len(f5.Columns) - 1
		groups := harness.GroupAverages(f5, lastCol)
		fmt.Println("per-class CAMPS-MOD speedup over BASE (paper: HM +24.9%, LM +9.4%, MX +19.6%):")
		for _, g := range []string{"HM", "LM", "MX"} {
			if v, ok := groups[g]; ok {
				fmt.Printf("  %s %+.1f%%\n", g, (v-1)*100)
			}
		}
		fmt.Println(report.Summary(grid))
	}

	if *reportPath != "" {
		md := report.Markdown(grid, "CAMPS reproduction report")
		if err := os.WriteFile(*reportPath, []byte(md), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *reportPath)
	}
}
