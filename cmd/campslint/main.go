// Command campslint statically enforces the simulator's determinism and
// concurrency invariants: no wall clock or global RNG in simulation
// packages, no map-iteration order leaking into results, context
// threaded through every orchestration entry point, no tick/duration
// unit mixing, and no unregistered obs metrics.
//
// Usage:
//
//	campslint [flags] [packages]
//
// Exit status is 0 when the tree is clean, 1 when there are findings,
// and 2 on usage or load errors. See docs/LINTING.md for the analyzer
// catalogue and the //lint:allow-* escape hatches.
package main

import (
	"os"

	"camps/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
