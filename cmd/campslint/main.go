// Command campslint statically enforces the simulator's determinism and
// concurrency invariants. Per-package analyzers check that no wall
// clock or global RNG reaches simulation packages, no map-iteration
// order leaks into results, context is threaded through every
// orchestration entry point, ticks never mix with time.Duration, and
// obs metrics are registered. Whole-program analyzers walk a
// cross-package call graph (including prefetch.Engine interface
// dispatch) built from cached per-package facts: shardsafe certifies
// that vault-controller paths never write shared state or launch
// goroutines, globalmut that mutable package-level state is written
// only during init or Register-at-init, and detflow that no
// nondeterminism source hides behind a cross-package helper called
// from simulation code.
//
// Usage:
//
//	campslint [flags] [analyzer,...] [packages]
//
// The analyzer selection may ride as the first positional argument
// (e.g. `campslint shardsafe,globalmut,detflow ./...`) or via -only.
// -timing reports load, facts-cache, and per-analyzer wall time;
// -allow-budget fails the run when //lint:allow-* use exceeds the
// committed .campslint-budget baseline.
//
// Exit status is 0 when the tree is clean, 1 when there are findings
// or the allow budget is exceeded, and 2 on usage or load errors. See
// docs/LINTING.md for the analyzer catalogue and the //lint:allow-*
// escape hatches.
package main

import (
	"os"

	"camps/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
