// Command campsweep sweeps one configuration knob across a list of values
// and prints a CSV of the headline metrics for each value — the generic
// engine behind the ablation studies in DESIGN.md §5.
//
// Sweeps run through the experiment orchestrator (internal/exp): cells run
// in parallel, SIGINT/SIGTERM cancel the campaign mid-simulation, -out
// checkpoints every completed cell to a JSONL store as it lands, and
// -resume skips cells that store already holds — an interrupted sweep
// picks up where it stopped without redoing work.
//
// Usage:
//
//	campsweep -knob ct -values 8,16,32,64 -mix HM2
//	campsweep -knob buffer -values 4,8,16,32 -scheme CAMPS-MOD
//	campsweep -knob threshold -values 1,2,4,8 -out sweep.jsonl
//	campsweep -knob threshold -values 1,2,4,8 -out sweep.jsonl -resume
//	campsweep -knob window -values 1,2,4,8,16 -timeout 2m
//	campsweep -knob tsv -values 0,40,10,2
//	campsweep -knob vaults -values 8,16,32
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"camps"
	"camps/internal/cliutil"
	"camps/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("campsweep: ")

	var (
		name     = flag.String("knob", "", "knob to sweep (see -list)")
		values   = flag.String("values", "", "comma-separated values")
		mixID    = flag.String("mix", "HM2", "workload mix")
		scheme   = flag.String("scheme", "CAMPS-MOD", "prefetching scheme ("+strings.Join(camps.SchemeNames(), ", ")+")")
		instr    = flag.Uint64("instr", 200_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "trace seed")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget per cell attempt (0 = none)")
		retries  = flag.Int("retries", 0, "extra attempts for transiently failing cells")
		out      = flag.String("out", "", "checkpoint completed cells to this JSONL file")
		resume   = flag.Bool("resume", false, "skip cells already present in the -out checkpoint")
		compact  = flag.Bool("compact", false, "compact the -out checkpoint (keep the latest record per cell) and exit")
		faults   = flag.String("faults", "", "deterministic fault-injection spec applied to every cell; "+camps.FaultGrammar())
		check    = flag.Bool("check", false, "run the epoch invariant checker in every cell")
		list     = flag.Bool("list", false, "list knobs and exit")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cliutil.PrintVersion(os.Stdout, "campsweep")
		return
	}
	knobs := exp.Knobs()
	if *list {
		names := make([]string, 0, len(knobs))
		for n := range knobs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-10s %s\n", n, knobs[n].Help)
		}
		return
	}
	if *compact {
		// Resumed campaigns re-append records the store already holds, so
		// long-lived checkpoints accumulate superseded lines; -compact
		// rewrites the file keeping only the latest record per cell.
		if *out == "" {
			log.Fatal("-compact needs -out to name the checkpoint")
		}
		st, err := exp.OpenStore(*out)
		if err != nil {
			log.Fatal(err)
		}
		kept, dropped, err := st.Compact()
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatalf("compact %s: %v", *out, err)
		}
		fmt.Printf("compacted %s: kept %d records, dropped %d superseded lines\n", *out, kept, dropped)
		return
	}
	k, ok := knobs[*name]
	if !ok {
		log.Fatalf("unknown knob %q (use -list)", *name)
	}
	if *values == "" {
		log.Fatal("need -values")
	}
	if *resume && *out == "" {
		log.Fatal("-resume needs -out to name the checkpoint")
	}
	mix, err := camps.MixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	s, err := camps.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	var vals []int64
	for _, raw := range strings.Split(*values, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			log.Fatalf("bad value %q: %v", raw, err)
		}
		vals = append(vals, v)
	}
	var faultSpec camps.FaultSpec
	if *faults != "" {
		faultSpec, err = camps.ParseFaultSpec(*faults)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
	}

	// SIGINT/SIGTERM cancel the campaign: in-flight simulations halt
	// within one epoch, and every finished cell is already fsync'd to the
	// checkpoint, so -resume completes the sweep later.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cells := exp.Sweep(mix, s, *seed, *name, vals, k.Apply)
	results, stats, err := exp.Run(ctx, cells, exp.Options{
		MeasureInstr:    *instr,
		Parallelism:     *parallel,
		CellTimeout:     *timeout,
		Retries:         *retries,
		Checkpoint:      *out,
		Resume:          *resume,
		Faults:          faultSpec,
		CheckInvariants: *check,
		Progress: func(cr exp.CellResult) {
			state := "done"
			if cr.Resumed {
				state = "resumed"
			}
			fmt.Fprintf(os.Stderr, "%s %s=%d (attempt %d, %v)\n",
				state, cr.Knob, cr.Value, cr.Attempt, cr.Duration.Round(time.Millisecond))
		},
	})

	fmt.Printf("# sweep %s on %s under %v (%d instr/core, seed %d)\n",
		*name, mix.ID, s, *instr, *seed)
	fmt.Println("value,ipc,amat_ns,conflict_rate,bufhit_rate,row_accuracy,energy_mJ,faults")
	for _, cr := range results {
		res := cr.Results
		var injected uint64
		if res.Faults != nil {
			injected = res.Faults.Total()
		}
		fmt.Printf("%d,%.4f,%.1f,%.4f,%.4f,%.4f,%.3f,%d\n",
			cr.Value, res.GeoMeanIPC, res.AMATps/1000, res.RowConflictRate,
			res.BufferHitRate, res.PrefetchAccuracy, res.Energy.Total()/1e9, injected)
	}

	if err != nil {
		if errors.Is(err, context.Canceled) && *out != "" {
			log.Printf("interrupted after %d/%d cells; rerun with -resume -out %s to finish",
				stats.Completed+stats.Resumed, len(cells), *out)
		}
		log.Fatal(err)
	}
}
