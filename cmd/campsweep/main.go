// Command campsweep sweeps one configuration knob across a list of values
// and prints a CSV of the headline metrics for each value — the generic
// engine behind the ablation studies in DESIGN.md §5.
//
// Usage:
//
//	campsweep -knob ct -values 8,16,32,64 -mix HM2
//	campsweep -knob buffer -values 4,8,16,32 -scheme CAMPS-MOD
//	campsweep -knob threshold -values 1,2,4,8
//	campsweep -knob window -values 1,2,4,8,16
//	campsweep -knob tsv -values 0,40,10,2
//	campsweep -knob vaults -values 8,16,32
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"camps"
	"camps/internal/cliutil"
)

// knob describes one sweepable configuration dimension.
type knob struct {
	help  string
	apply func(sys *camps.SystemConfig, v int64)
}

var knobs = map[string]knob{
	"ct": {"CAMPS conflict-table entries per vault",
		func(sys *camps.SystemConfig, v int64) { sys.CAMPS.CTEntries = int(v) }},
	"threshold": {"CAMPS RUT utilization threshold",
		func(sys *camps.SystemConfig, v int64) { sys.CAMPS.UtilThreshold = int(v) }},
	"buffer": {"prefetch-buffer entries per vault",
		func(sys *camps.SystemConfig, v int64) {
			sys.PFBuffer.SizeBytes = v * int64(sys.PFBuffer.LineBytes)
		}},
	"window": {"per-core MLP window (outstanding misses)",
		func(sys *camps.SystemConfig, v int64) { sys.Processor.WindowSize = int(v) }},
	"tsv": {"per-vault TSV bandwidth in GB/s (0 = unlimited)",
		func(sys *camps.SystemConfig, v int64) { sys.HMC.TSVGBps = v }},
	"vaults": {"vault count (power of two)",
		func(sys *camps.SystemConfig, v int64) { sys.HMC.Vaults = int(v) }},
	"mshrs": {"shared L3 MSHR entries",
		func(sys *camps.SystemConfig, v int64) { sys.L3.MSHRs = int(v) }},
	"readq": {"vault read-queue depth",
		func(sys *camps.SystemConfig, v int64) { sys.HMC.ReadQueue = int(v) }},
	"port": {"vault crossbar ingress port GB/s (0 = unbounded)",
		func(sys *camps.SystemConfig, v int64) { sys.Links.VaultPortGBps = v }},
	"l2pf": {"core-side L2 stride prefetch degree (0 = off)",
		func(sys *camps.SystemConfig, v int64) { sys.Processor.L2PrefetchDegree = int(v) }},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("campsweep: ")

	var (
		name    = flag.String("knob", "", "knob to sweep (see -list)")
		values  = flag.String("values", "", "comma-separated values")
		mixID   = flag.String("mix", "HM2", "workload mix")
		scheme  = flag.String("scheme", "CAMPS-MOD", "prefetching scheme")
		instr   = flag.Uint64("instr", 200_000, "measured instructions per core")
		seed    = flag.Uint64("seed", 1, "trace seed")
		list    = flag.Bool("list", false, "list knobs and exit")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cliutil.PrintVersion(os.Stdout, "campsweep")
		return
	}
	if *list {
		for n, k := range knobs {
			fmt.Printf("%-10s %s\n", n, k.help)
		}
		return
	}
	k, ok := knobs[*name]
	if !ok {
		log.Fatalf("unknown knob %q (use -list)", *name)
	}
	if *values == "" {
		log.Fatal("need -values")
	}
	mix, err := camps.MixByID(*mixID)
	if err != nil {
		log.Fatal(err)
	}
	s, err := camps.ParseScheme(strings.ToUpper(*scheme))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("# sweep %s on %s under %v (%d instr/core, seed %d)\n",
		*name, mix.ID, s, *instr, *seed)
	fmt.Println("value,ipc,amat_ns,conflict_rate,bufhit_rate,row_accuracy,energy_mJ")
	for _, raw := range strings.Split(*values, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			log.Fatalf("bad value %q: %v", raw, err)
		}
		sys := camps.DefaultSystem()
		k.apply(&sys, v)
		res, err := camps.Run(camps.RunConfig{
			System:       sys,
			Scheme:       s,
			Mix:          mix,
			Seed:         *seed,
			MeasureInstr: *instr,
		})
		if err != nil {
			log.Fatalf("value %d: %v", v, err)
		}
		fmt.Printf("%d,%.4f,%.1f,%.4f,%.4f,%.4f,%.3f\n",
			v, res.GeoMeanIPC, res.AMATps/1000, res.RowConflictRate,
			res.BufferHitRate, res.PrefetchAccuracy, res.Energy.Total()/1e9)
	}
}
