// Command traceinfo summarizes a trace: reference counts, footprint, row
// locality (episode lengths and utilization — the properties the CAMPS
// mechanisms key on) and the dominant strides. It reads either a trace
// file produced by tracegen or generates a benchmark on the fly.
//
// Usage:
//
//	traceinfo -f mcf.trace
//	traceinfo -bench omnetpp -n 200000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"camps/internal/cliutil"
	"camps/internal/trace"
	"camps/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("traceinfo: ")

	var (
		file    = flag.String("f", "", "trace file to analyze")
		bench   = flag.String("bench", "", "generate this benchmark instead of reading a file")
		n       = flag.Int64("n", 500_000, "references to analyze")
		seed    = flag.Uint64("seed", 1, "generator seed (with -bench)")
		lineB   = flag.Int64("line", 64, "cache line bytes")
		rowB    = flag.Int64("row", 1024, "DRAM row bytes")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()

	if *version {
		cliutil.PrintVersion(os.Stdout, "traceinfo")
		return
	}

	var r trace.Reader
	var source string
	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r, err = trace.OpenReader(f) // sniffs fixed-v1 vs compact-v2
		if err != nil {
			log.Fatal(err)
		}
		source = *file
	case *bench != "":
		b, err := workload.GetAny(*bench)
		if err != nil {
			log.Fatal(err)
		}
		g, err := trace.NewGenerator(b.Profile, 0, *seed)
		if err != nil {
			log.Fatal(err)
		}
		r = g
		source = *bench + " (synthetic)"
	default:
		log.Fatal("need -f <file> or -bench <name>")
	}

	a, err := trace.Analyze(r, *lineB, *rowB, *n)
	if err != nil {
		log.Fatal(err)
	}
	if a.Records == 0 {
		log.Fatal("trace is empty")
	}

	fmt.Printf("trace: %s\n\n", source)
	fmt.Printf("references        %12d (%d reads / %d writes, %.1f%% reads)\n",
		a.Records, a.Reads, a.Writes, 100*float64(a.Reads)/float64(a.Records))
	fmt.Printf("mean gap          %12.2f non-memory instructions\n", a.MeanGap)
	fmt.Printf("unique lines      %12d (%.1f MiB touched)\n",
		a.UniqueLines, float64(a.UniqueLines)*float64(*lineB)/(1<<20))
	fmt.Printf("footprint span    %12.1f MiB\n", float64(a.FootprintBytes)/(1<<20))
	fmt.Printf("row episodes      %12d (len %.2f refs, util %.2f distinct lines)\n",
		a.RowEpisodes, a.MeanEpisodeLen, a.MeanEpisodeUtil)
	fmt.Printf("same-row rate     %12.1f%%\n", a.SameRowRate*100)
	fmt.Println("\ntop strides (bytes -> share):")
	for _, sc := range a.TopStrides {
		fmt.Printf("  %12d  %6.2f%%\n", sc.Stride, 100*float64(sc.Count)/float64(a.Records-1))
	}
}
