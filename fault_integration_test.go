package camps_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"camps"
	"camps/internal/obs"
	"camps/internal/sim"
)

// degraded returns a fault spec exercising every fault class at rates
// high enough to fire in a short run.
func degraded() camps.FaultSpec {
	spec, err := camps.ParseFaultSpec(
		"linkcrc=2e-3,stall=1e-3,stallfor=50ns,poison=5e-3,bankfail=50us,bankfor=1us,seed=3")
	if err != nil {
		panic(err)
	}
	return spec
}

func TestRunZeroFaultSpecMatchesDisabled(t *testing.T) {
	base, err := camps.RunContext(context.Background(), quick("MX1", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	rc := quick("MX1", camps.CAMPS)
	rc.Faults = camps.FaultSpec{Seed: 7} // all rates zero: must be inert
	zero, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Faults != nil {
		t.Fatalf("all-zero spec produced fault counts: %+v", *zero.Faults)
	}
	a, _ := json.Marshal(base)
	b, _ := json.Marshal(zero)
	if !bytes.Equal(a, b) {
		t.Fatalf("all-zero fault spec perturbed results:\n%s\nvs\n%s", a, b)
	}
}

func TestRunFaultsDeterministic(t *testing.T) {
	run := func(faultSeed uint64) []byte {
		rc := quick("HM1", camps.CAMPSMOD)
		rc.Faults = degraded()
		rc.Faults.Seed = faultSeed
		rc.CheckInvariants = true
		res, err := camps.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults == nil || res.Faults.Total() == 0 {
			t.Fatalf("degraded spec injected nothing: %+v", res.Faults)
		}
		out, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(3), run(3)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed+spec produced different results:\n%s\nvs\n%s", a, b)
	}
	if c := run(4); bytes.Equal(a, c) {
		t.Fatal("different fault seeds produced byte-identical results")
	}
}

// The acceptance criterion verbatim: two runs with identical seed and
// fault spec must produce byte-identical -metrics-out JSON — the exact
// bytes campsim writes, i.e. the observability suite's JSONL export with
// the fault.* counters included.
func TestRunFaultsMetricsExportByteIdentical(t *testing.T) {
	export := func() []byte {
		rc := quick("MX2", camps.CAMPS)
		rc.Faults = degraded()
		rc.Obs = obs.NewSuite(0)
		rc.EpochInterval = 10 * sim.Microsecond
		if _, err := camps.RunContext(context.Background(), rc); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rc.Obs.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if len(a) == 0 {
		t.Fatal("metrics export is empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed+spec produced different metrics JSON (%d vs %d bytes)", len(a), len(b))
	}
	// The export must actually carry the fault counters.
	var last obs.Snapshot
	lines := bytes.Split(bytes.TrimSpace(a), []byte("\n"))
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	total := uint64(0)
	for _, name := range []string{
		"fault.link_crc_errors", "fault.link_retries", "fault.vault_stalls",
		"fault.poisoned_rows", "fault.bank_blackouts",
	} {
		n, ok := last.Counters[name]
		if !ok {
			t.Fatalf("final snapshot missing %s; counters: %v", name, last.Counters)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("fault counters all zero under a degraded spec")
	}
}

func TestRunDegradedStillCompletes(t *testing.T) {
	clean, err := camps.RunContext(context.Background(), quick("HM2", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	rc := quick("HM2", camps.CAMPS)
	rc.Faults = degraded()
	rc.CheckInvariants = true
	hurt, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	// Every core must still retire its measured region under faults (Run
	// errors otherwise); the run just takes longer.
	if hurt.Instructions < 8*60_000 {
		t.Fatalf("degraded run retired only %d instructions", hurt.Instructions)
	}
	if hurt.ElapsedSim <= clean.ElapsedSim {
		t.Fatalf("faults did not cost time: %v vs clean %v", hurt.ElapsedSim, clean.ElapsedSim)
	}
	if hurt.AMATps <= clean.AMATps {
		t.Fatalf("faults did not raise AMAT: %v vs clean %v", hurt.AMATps, clean.AMATps)
	}
}

func TestRunInvariantCheckedCleanRun(t *testing.T) {
	rc := quick("LM1", camps.BASE)
	rc.CheckInvariants = true
	if _, err := camps.RunContext(context.Background(), rc); err != nil {
		t.Fatalf("clean run tripped an invariant: %v", err)
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	rc := quick("MX1", camps.CAMPS)
	rc.Faults.LinkCRCRate = 1.5 // probabilities live in [0,1]
	_, err := camps.RunContext(context.Background(), rc)
	if err == nil {
		t.Fatal("invalid fault spec accepted")
	}
	if !errors.Is(err, camps.ErrBadFaultSpec) {
		t.Fatalf("error not typed as ErrBadFaultSpec: %v", err)
	}
}
