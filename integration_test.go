package camps_test

import (
	"context"
	"testing"

	"camps"
)

// TestTrafficConservation checks end-to-end accounting: every memory read
// the cores issue is observed by the cube's vaults, and every demand
// request resolves exactly once (buffer hit or bank access).
func TestTrafficConservation(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("MX3", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	vs := &res.VaultStats
	demand := vs.DemandReads.Value() + vs.DemandWrites.Value()
	issued := res.MemReads + res.MemWrites
	// The engine halts the moment every core's measured region completes;
	// a handful of requests can still be in flight on the links or in the
	// queues, so allow a small in-flight residue (<0.1%) but never more
	// arrivals than issues.
	if demand > issued {
		t.Fatalf("vaults saw %d requests but cores only issued %d", demand, issued)
	}
	if missing := issued - demand; missing > issued/1000+64 {
		t.Fatalf("cores issued %d requests, vaults saw only %d", issued, demand)
	}
	// Arrived requests resolve as buffer hits or bank accesses (reads) or
	// buffer absorbs/drained bursts (writes); queued-at-halt requests are
	// the same small residue.
	resolved := vs.BufferHits.Value() + res.RowHits + res.RowMisses + res.RowConflicts
	if resolved > demand {
		t.Fatalf("resolved %d of %d demand requests", resolved, demand)
	}
	if pendingAtHalt := demand - resolved; pendingAtHalt > demand/1000+64 {
		t.Fatalf("resolved only %d of %d demand requests (hits %d, bank %d)",
			resolved, demand, vs.BufferHits.Value(),
			res.RowHits+res.RowMisses+res.RowConflicts)
	}
}

// TestPrefetchAccountingClosed checks the prefetch pipeline's bookkeeping:
// inserts equal evictions after the final flush, and used rows never
// exceed inserts.
func TestPrefetchAccountingClosed(t *testing.T) {
	for _, s := range []camps.Scheme{camps.BASE, camps.CAMPSMOD} {
		res, err := camps.RunContext(context.Background(), quick("HM4", s))
		if err != nil {
			t.Fatal(err)
		}
		bs := res.BufferStats
		if bs.Inserts != bs.Evictions {
			t.Fatalf("%v: %d inserts vs %d evictions after flush", s, bs.Inserts, bs.Evictions)
		}
		if bs.UsedRows > bs.Inserts {
			t.Fatalf("%v: used rows %d exceed inserts %d", s, bs.UsedRows, bs.Inserts)
		}
		if res.PrefetchesIssued < bs.Inserts {
			t.Fatalf("%v: %d buffer inserts but only %d fetches executed",
				s, bs.Inserts, res.PrefetchesIssued)
		}
	}
}

// TestAMATWithinPhysicalBounds: no read can complete faster than the
// no-contention path, nor slower than a gross upper bound.
func TestAMATWithinPhysicalBounds(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("LM2", camps.MMD))
	if err != nil {
		t.Fatal(err)
	}
	// Lower bound: link + crossbar + buffer hit, ~15 ns. Upper bound: a
	// microsecond would mean runaway queueing.
	if res.AMATps < 15_000 || res.AMATps > 1_000_000 {
		t.Fatalf("AMAT %.1f ns outside physical bounds", res.AMATps/1000)
	}
}

// TestSchemesShareDemandProfile: the demand stream offered to the memory
// system is workload-determined, so total core-side reads should be within
// a few percent across schemes (timing feedback shifts post-budget counts
// slightly).
func TestSchemesShareDemandProfile(t *testing.T) {
	var reads []float64
	for _, s := range camps.Schemes() {
		res, err := camps.RunContext(context.Background(), quick("HM2", s))
		if err != nil {
			t.Fatal(err)
		}
		reads = append(reads, float64(res.MemReads))
	}
	for i := 1; i < len(reads); i++ {
		ratio := reads[i] / reads[0]
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("scheme %v demand reads diverge: %.0f vs %.0f",
				camps.Schemes()[i], reads[i], reads[0])
		}
	}
}

// TestEnergyScalesWithWork: doubling the measured region should increase
// total energy substantially.
func TestEnergyScalesWithWork(t *testing.T) {
	small := quick("MX4", camps.CAMPS)
	big := quick("MX4", camps.CAMPS)
	big.MeasureInstr = 2 * small.MeasureInstr
	rs, err := camps.RunContext(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := camps.RunContext(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Energy.Total() < 1.5*rs.Energy.Total() {
		t.Fatalf("energy did not scale with work: %g vs %g",
			rb.Energy.Total(), rs.Energy.Total())
	}
	if rb.ElapsedSim <= rs.ElapsedSim {
		t.Fatal("simulated time did not grow with work")
	}
}

// TestWindowSizeSensitivity: the core's MLP window must matter end to end.
func TestWindowSizeSensitivity(t *testing.T) {
	run := func(window int) float64 {
		rc := quick("HM1", camps.CAMPS)
		sys := camps.DefaultSystem()
		sys.Processor.WindowSize = window
		rc.System = sys
		res, err := camps.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		return res.GeoMeanIPC
	}
	if narrow, wide := run(1), run(16); wide <= narrow {
		t.Fatalf("IPC insensitive to MLP window: w1 %g vs w16 %g", narrow, wide)
	}
}

// TestNonDefaultGeometry runs a differently shaped cube (8 vaults, 2 GiB,
// larger rows) end to end to prove the geometry is not hard-coded.
func TestNonDefaultGeometry(t *testing.T) {
	sys := camps.DefaultSystem()
	sys.HMC.Vaults = 8
	sys.HMC.RowsPerBank = 4096
	sys.HMC.RowBytes = 2048
	sys.PFBuffer.LineBytes = 2048
	sys.PFBuffer.SizeBytes = 16 * 2048
	rc := quick("MX2", camps.CAMPSMOD)
	rc.System = sys
	res, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeoMeanIPC <= 0 || res.PrefetchesIssued == 0 {
		t.Fatalf("non-default geometry run degenerate: %+v", res.GeoMeanIPC)
	}
}

// TestCoreSidePrefetcherWorksEndToEnd: enabling the L2 stride prefetcher
// on streaming traffic must beat the no-prefetch reference.
func TestCoreSidePrefetcherWorksEndToEnd(t *testing.T) {
	run := func(degree int) float64 {
		rc := quick("HM1", camps.NONE)
		sys := camps.DefaultSystem()
		sys.Processor.L2PrefetchDegree = degree
		rc.System = sys
		res, err := camps.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		return res.GeoMeanIPC
	}
	off, on := run(0), run(2)
	if on <= off {
		t.Fatalf("core-side prefetcher did not help: off %g vs on %g", off, on)
	}
}

// TestGoldenDeterminism pins the exact integer counters of one small run.
// Any change to simulator behaviour — intended or not — shows up here; the
// test is the regression tripwire for the reproduction's numbers. Update
// the constants deliberately when a behaviour change is intentional.
func TestGoldenDeterminism(t *testing.T) {
	rc := camps.RunConfig{
		Scheme:       camps.CAMPSMOD,
		WarmupRefs:   2_000,
		MeasureInstr: 30_000,
		Seed:         42,
	}
	mix, _ := camps.MixByID("MX1")
	rc.Mix = mix
	a, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	// Exact equality of every integer counter between two identical runs.
	type key struct {
		name string
		a, b uint64
	}
	for _, k := range []key{
		{"MemReads", a.MemReads, b.MemReads},
		{"MemWrites", a.MemWrites, b.MemWrites},
		{"RowHits", a.RowHits, b.RowHits},
		{"RowMisses", a.RowMisses, b.RowMisses},
		{"RowConflicts", a.RowConflicts, b.RowConflicts},
		{"PrefetchesIssued", a.PrefetchesIssued, b.PrefetchesIssued},
		{"Instructions", a.Instructions, b.Instructions},
		{"MSHRCoalesced", a.MSHRCoalesced, b.MSHRCoalesced},
		{"L3Hits", a.Caches.L3Hits, b.Caches.L3Hits},
	} {
		if k.a != k.b {
			t.Errorf("%s differs between identical runs: %d vs %d", k.name, k.a, k.b)
		}
	}
	if a.ElapsedSim != b.ElapsedSim {
		t.Errorf("ElapsedSim differs: %v vs %v", a.ElapsedSim, b.ElapsedSim)
	}
	// Cache rates are ordered as a hierarchy should be under this load.
	if a.Caches.L1HitRate() <= 0 || a.Caches.L1HitRate() >= 1 {
		t.Errorf("L1 hit rate %g degenerate", a.Caches.L1HitRate())
	}
}
