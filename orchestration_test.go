package camps_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"camps"
	"camps/internal/exp"
	"camps/internal/harness"
	"camps/internal/workload"
)

// TestCampaignInterruptAndResume is the end-to-end resumability contract:
// a campaign of real simulations is cancelled partway (campsweep wires
// SIGINT to exactly this context cancellation), must leave a valid JSONL
// checkpoint behind, and a -resume-style re-run must complete the grid
// while re-executing only the cells the first run never finished.
func TestCampaignInterruptAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	hm1, _ := workload.MixByID("HM1")
	lm1, _ := workload.MixByID("LM1")
	cells := exp.Grid(
		[]workload.Mix{hm1, lm1},
		[]camps.Scheme{camps.BASE, camps.CAMPS, camps.CAMPSMOD},
		[]uint64{1},
	)
	small := exp.Options{
		WarmupRefs:   2_000,
		MeasureInstr: 20_000,
		Parallelism:  2,
		Checkpoint:   path,
	}

	// Phase 1: cancel after two cells have been checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	finished := 0
	opts := small
	opts.Progress = func(cr exp.CellResult) {
		mu.Lock()
		finished++
		if finished == 2 {
			cancel()
		}
		mu.Unlock()
	}
	_, st1, err := exp.Run(ctx, cells, opts)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("phase 1 err = %v, want context.Canceled", err)
	}
	if st1.Completed == 0 || st1.Completed >= uint64(len(cells)) {
		t.Fatalf("phase 1 completed %d of %d cells; cancellation had no effect", st1.Completed, len(cells))
	}

	// The interrupted checkpoint must be valid line-by-line JSONL.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if uint64(len(lines)) != st1.Completed {
		t.Fatalf("checkpoint has %d lines, %d cells completed", len(lines), st1.Completed)
	}
	store, err := exp.OpenStore(path)
	if err != nil {
		t.Fatalf("interrupted checkpoint unreadable: %v", err)
	}
	if store.Len() != int(st1.Completed) {
		t.Fatalf("store reloaded %d records, want %d", store.Len(), st1.Completed)
	}
	store.Close()

	// Phase 2: resume. Only the unfinished cells may execute.
	opts = small
	opts.Resume = true
	results, st2, err := exp.Run(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cells) {
		t.Fatalf("resumed campaign returned %d cells, want %d", len(results), len(cells))
	}
	if st2.Resumed != st1.Completed {
		t.Fatalf("resumed %d cells, want %d", st2.Resumed, st1.Completed)
	}
	if want := uint64(len(cells)) - st1.Completed; st2.Started != want {
		t.Fatalf("resume executed %d cells, want %d", st2.Started, want)
	}

	// Resumed and fresh cells must be interchangeable: every cell carries
	// real measurements, and a resumed BASE cell's results must equal a
	// fresh run of the same cell (the checkpoint round-trips losslessly
	// enough for the figure pipeline).
	for _, cr := range results {
		if cr.Results.GeoMeanIPC <= 0 {
			t.Fatalf("cell %s/%v has no IPC (resumed=%v)", cr.Mix, cr.Scheme, cr.Resumed)
		}
	}
	var probe exp.CellResult
	for _, cr := range results {
		if cr.Resumed {
			probe = cr
			break
		}
	}
	mix, _ := workload.MixByID(probe.Mix)
	fresh, err := camps.RunContext(context.Background(), camps.RunConfig{
		Scheme: probe.Scheme, Mix: mix, Seed: probe.Seed,
		WarmupRefs: small.WarmupRefs, MeasureInstr: small.MeasureInstr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.GeoMeanIPC != probe.Results.GeoMeanIPC ||
		fresh.RowConflicts != probe.Results.RowConflicts ||
		fresh.VaultStats.BufferHits.Value() != probe.Results.VaultStats.BufferHits.Value() {
		t.Fatalf("resumed cell diverged from fresh run:\nresumed %+v\nfresh IPC %g conflicts %d",
			probe.Results.GeoMeanIPC, fresh.GeoMeanIPC, fresh.RowConflicts)
	}
}

// TestHarnessCheckpointResume drives the same contract through the grid
// harness: a grid built from a half-resumed campaign must be complete.
func TestHarnessCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	hm1, _ := workload.MixByID("HM1")
	base := harness.Options{
		Mixes:        []workload.Mix{hm1},
		Schemes:      []camps.Scheme{camps.BASE, camps.MMD, camps.CAMPSMOD},
		WarmupRefs:   2_000,
		MeasureInstr: 20_000,
		Parallelism:  1,
		Checkpoint:   path,
	}

	ctx, cancel := context.WithCancel(context.Background())
	opts := base
	opts.Progress = func(cr harness.CellResult) { cancel() } // stop after the first cell
	if _, err := harness.RunContext(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	opts = base
	opts.Resume = true
	g, err := harness.RunContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range g.Schemes() {
		r, ok := g.Cell("HM1", s)
		if !ok || r.GeoMeanIPC <= 0 {
			t.Fatalf("resumed grid missing cell HM1/%v", s)
		}
	}
	// The figure pipeline must work off a partially-resumed grid.
	if f5 := g.Figure5(); f5.Rows() != 2 || f5.Value(0, 0) != 1.0 {
		t.Fatalf("figure 5 from resumed grid is malformed")
	}
}
