package camps_test

import (
	"context"
	"fmt"

	"camps"
)

// ExampleParseScheme shows scheme name round-tripping.
func ExampleParseScheme() {
	s, _ := camps.ParseScheme("CAMPS-MOD")
	fmt.Println(s)
	for _, sc := range camps.Schemes() {
		fmt.Print(sc, " ")
	}
	fmt.Println()
	// Output:
	// CAMPS-MOD
	// BASE BASE-HIT MMD CAMPS CAMPS-MOD
}

// ExampleMixByID shows Table II lookup.
func ExampleMixByID() {
	mix, _ := camps.MixByID("HM1")
	fmt.Println(mix.ID, mix.Group())
	fmt.Println(mix.Benchmarks[0], mix.Benchmarks[1])
	// Output:
	// HM1 HM
	// bwaves gems
}

// ExampleRun runs a small simulation end to end. Its numeric results
// depend on the simulator version, so only structural facts are printed.
func ExampleRun() {
	mix, _ := camps.MixByID("LM1")
	res, err := camps.RunContext(context.Background(), camps.RunConfig{
		Scheme:       camps.CAMPSMOD,
		Mix:          mix,
		WarmupRefs:   2_000,
		MeasureInstr: 20_000,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("cores:", len(res.IPC))
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("positive IPC:", res.GeoMeanIPC > 0)
	// Output:
	// cores: 8
	// scheme: CAMPS-MOD
	// positive IPC: true
}

// ExampleDefaultSystem shows how to derive an ablation configuration.
func ExampleDefaultSystem() {
	sys := camps.DefaultSystem()
	fmt.Println("vaults:", sys.HMC.Vaults)
	fmt.Println("banks/vault:", sys.HMC.Banks())
	fmt.Println("buffer entries:", sys.PFBuffer.Entries())
	fmt.Println("scheduler:", sys.HMC.Scheduler)
	// Output:
	// vaults: 32
	// banks/vault: 16
	// buffer entries: 16
	// scheduler: FR-FCFS
}
