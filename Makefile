# Developer entry points. `make verify` mirrors the CI job exactly.

GO ?= go

.PHONY: build vet test race verify bench figures clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

figures:
	$(GO) run ./cmd/campbench

clean:
	$(GO) clean ./...
