# Developer entry points. `make verify` mirrors the CI job exactly.

GO ?= go

# Third-party linters are version-pinned here (the single source CI
# installs from) so lint results are reproducible. The module itself has
# no dependencies, so the pins live in the Makefile rather than a
# tools.go: adding go.mod requirements just to version dev tools would
# put the whole build at the mercy of the network. Locally the tools are
# optional; campslint always runs.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build vet test race orchestration observability serve serve-smoke lint lint-parallel-readiness lint-tools fuzz-smoke fault-smoke parallel-differential verify bench bench-json bench-check bench-parallel figures clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The vault controller is the unit of sharding for the parallel event
# engine; stress it uncached alongside the ./... sweep so a race there
# cannot hide behind the test cache.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 ./internal/vault/...

# The orchestration layer (scheduler, checkpoint store, context-threaded
# public API) is the most concurrency-sensitive code in the repo; vet and
# race-test it explicitly even when iterating on a subset of packages.
orchestration:
	$(GO) vet ./internal/exp/... ./internal/harness/... .
	$(GO) test -race ./internal/exp/... ./internal/harness/... .

# The observability layer crosses goroutines in exactly one place (the
# SSE stream server) and the campaign runner snapshots metrics from the
# scheduler goroutine; race-test both packages explicitly so a data race
# there cannot hide behind a cached ./... run.
observability:
	$(GO) test -race -count=1 ./internal/obs/... ./internal/exp/...

# The serving layer multiplexes tenants, goroutines, and fsync'd state;
# always race-test it uncached. The suite includes the 2000-job soak
# storm and the SIGKILL crash-recovery subprocess test (docs/SERVING.md).
serve:
	$(GO) test -race -count=1 ./internal/serve/...

# End-to-end daemon self-test: boots an ephemeral campserve, drives a
# real campaign over HTTP, and verifies completion, SSE terminal events,
# and byte-identical cache-hit results before draining.
serve-smoke:
	$(GO) run ./cmd/campserve -smoke >/dev/null

# campslint enforces the determinism/concurrency invariants (see
# docs/LINTING.md); -allow-budget holds the //lint:allow-* count to the
# committed .campslint-budget baseline. staticcheck and govulncheck run
# when installed (`make lint-tools`), and always in CI.
lint:
	$(GO) run ./cmd/campslint -allow-budget ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make lint-tools installs $(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (make lint-tools installs $(GOVULNCHECK_VERSION))"; \
	fi

# The whole-program parallel-readiness gate for the sharded event
# engine (ROADMAP): shard isolation, init-only globals, and
# interprocedural determinism, with per-stage wall time. Also runs as
# part of `make lint` (the full suite); this target isolates the three
# analyzers for fast iteration on vault/engine code.
lint-parallel-readiness:
	$(GO) run ./cmd/campslint -timing shardsafe,globalmut,detflow ./...

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Short deterministic-budget fuzz runs over the parsers that ingest
# external bytes: the checkpoint store, the compact trace format, and the
# fault-spec grammar.
fuzz-smoke:
	$(GO) test ./internal/exp -run=^$$ -fuzz=FuzzStoreRepair -fuzztime=10s
	$(GO) test ./internal/trace -run=^$$ -fuzz=FuzzCompactDecode -fuzztime=10s
	$(GO) test ./internal/fault -run=^$$ -fuzz=FuzzParseSpec -fuzztime=10s

# End-to-end degraded-memory smoke: a full campsim run with every fault
# class at a nonzero rate and the invariant checker armed. Exercises the
# whole injection path (links, vaults, buffer, banks) in ~10s of wall
# clock; any accounting drift under faults aborts with a typed error.
fault-smoke:
	$(GO) run ./cmd/campsim -mix HM1 -scheme CAMPS-MOD -instr 60000 -warmup 5000 \
		-faults 'linkcrc=1e-3,stall=1e-4,poison=2e-3,bankfail=100us,bankfor=2us' \
		-check -timeout 10s >/dev/null

# The sharded-engine determinism contract: every (mix, fault, workers)
# cell of the differential matrix must export byte-identical Results to
# the serial engine. Uncached, and under -race, so a scheduling leak in
# the window/barrier protocol cannot hide.
parallel-differential:
	$(GO) test -race -count=1 -run TestParallelMatchesSerial .

verify: build vet race orchestration observability serve lint parallel-differential fault-smoke serve-smoke

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Simulator-throughput baselines (see docs/PERFORMANCE.md). BENCH_BASELINE
# is the newest committed BENCH_*.json; the date-stamped names sort
# chronologically, so lexical max == latest. `make bench-json` records a
# new baseline; `make bench-check` replays the same scenarios (best of 3)
# and fails if any scenario's events/sec regressed more than 15%.
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_*.json)))

bench-json:
	$(GO) run ./cmd/campbench -bench -bench-count 3

bench-check:
	@test -n "$(BENCH_BASELINE)" || { echo "bench-check: no BENCH_*.json baseline found"; exit 1; }
	$(GO) run ./cmd/campbench -bench -bench-count 3 -bench-out "" \
		-bench-baseline $(BENCH_BASELINE)

# Worker-count scaling rows only (parallel-w*), best of 3, against the
# committed baseline when one exists. Wall-clock scaling needs real
# cores: on a single-CPU host these rows only measure barrier overhead.
bench-parallel:
	$(GO) run ./cmd/campbench -bench -bench-count 3 -bench-out "" -bench-match 'parallel-'

figures:
	$(GO) run ./cmd/campbench

clean:
	$(GO) clean ./...
