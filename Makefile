# Developer entry points. `make verify` mirrors the CI job exactly.

GO ?= go

.PHONY: build vet test race orchestration verify bench figures clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The orchestration layer (scheduler, checkpoint store, context-threaded
# public API) is the most concurrency-sensitive code in the repo; vet and
# race-test it explicitly even when iterating on a subset of packages.
orchestration:
	$(GO) vet ./internal/exp/... ./internal/harness/... .
	$(GO) test -race ./internal/exp/... ./internal/harness/... .

verify: build vet race orchestration

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

figures:
	$(GO) run ./cmd/campbench

clean:
	$(GO) clean ./...
