package camps_test

import (
	"context"
	"math"
	"testing"

	"camps"
	"camps/internal/trace"
)

// quick returns a RunConfig scaled for test speed.
func quick(mixID string, s camps.Scheme) camps.RunConfig {
	mix, err := camps.MixByID(mixID)
	if err != nil {
		panic(err)
	}
	return camps.RunConfig{
		Scheme:       s,
		Mix:          mix,
		WarmupRefs:   5_000,
		MeasureInstr: 60_000,
	}
}

func TestRunProducesCompleteResults(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("MX1", camps.CAMPSMOD))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mix != "MX1" || res.Scheme != camps.CAMPSMOD {
		t.Fatalf("identity fields wrong: %s %v", res.Mix, res.Scheme)
	}
	if len(res.IPC) != 8 || len(res.MPKI) != 8 {
		t.Fatalf("per-core slices: %d IPC, %d MPKI, want 8 each", len(res.IPC), len(res.MPKI))
	}
	for core, ipc := range res.IPC {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("core %d IPC = %g outside (0,4]", core, ipc)
		}
	}
	if res.GeoMeanIPC <= 0 {
		t.Fatal("GeoMeanIPC not positive")
	}
	if res.AMATps <= 0 {
		t.Fatal("AMAT not positive")
	}
	if res.MemReads == 0 || res.MemWrites == 0 {
		t.Fatalf("no memory traffic: reads %d writes %d", res.MemReads, res.MemWrites)
	}
	if res.PrefetchesIssued == 0 {
		t.Fatal("CAMPS-MOD issued no prefetches")
	}
	if res.PrefetchAccuracy <= 0 || res.PrefetchAccuracy > 1 {
		t.Fatalf("accuracy = %g outside (0,1]", res.PrefetchAccuracy)
	}
	if res.Energy.Total() <= 0 {
		t.Fatal("energy not positive")
	}
	if res.ElapsedSim <= 0 {
		t.Fatal("simulated time not positive")
	}
	if res.Instructions < 8*60_000 {
		t.Fatalf("instructions = %d, want >= 480000", res.Instructions)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := camps.RunContext(context.Background(), quick("LM2", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	b, err := camps.RunContext(context.Background(), quick("LM2", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	if a.GeoMeanIPC != b.GeoMeanIPC || a.AMATps != b.AMATps ||
		a.RowConflicts != b.RowConflicts || a.PrefetchesIssued != b.PrefetchesIssued {
		t.Fatalf("same-seed runs differ: %+v vs %+v", a, b)
	}
	rc := quick("LM2", camps.CAMPS)
	rc.Seed = 99
	c, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if c.GeoMeanIPC == a.GeoMeanIPC && c.RowConflicts == a.RowConflicts {
		t.Fatal("different seeds produced identical results")
	}
}

func TestBaseSchemeHasNoRowConflicts(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("LM1", camps.BASE))
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: BASE precharges behind every row copy, so conflicts are
	// (essentially) eliminated. Transient interleavings allow a handful.
	total := res.RowHits + res.RowMisses + res.RowConflicts
	if total == 0 {
		t.Fatal("no bank accesses at all")
	}
	if rate := float64(res.RowConflicts) / float64(total); rate > 0.02 {
		t.Fatalf("BASE conflict rate = %g, want ~0", rate)
	}
}

func TestCAMPSBeatsOpenPageSchemesOnConflictTraffic(t *testing.T) {
	// The headline claim: CAMPS-MOD outperforms BASE-HIT and MMD on a
	// high-intensity mix, with higher prefetch accuracy than BASE. Run at
	// a budget large enough for the effect to dominate warmup noise.
	var ipc [5]float64
	var acc [5]float64
	for i, s := range camps.Schemes() {
		rc := quick("HM1", s)
		rc.MeasureInstr = 150_000
		res, err := camps.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		ipc[i] = res.GeoMeanIPC
		acc[i] = res.LineAccuracy
	}
	base, baseHit, mmd, campsIPC, mod := ipc[0], ipc[1], ipc[2], ipc[3], ipc[4]
	if mod <= baseHit {
		t.Errorf("CAMPS-MOD (%g) should beat BASE-HIT (%g)", mod, baseHit)
	}
	if mod <= mmd {
		t.Errorf("CAMPS-MOD (%g) should beat MMD (%g)", mod, mmd)
	}
	if campsIPC <= base {
		t.Errorf("CAMPS (%g) should beat BASE (%g)", campsIPC, base)
	}
	if acc[3] <= acc[0] {
		t.Errorf("CAMPS accuracy (%g) should exceed BASE accuracy (%g)", acc[3], acc[0])
	}
}

func TestHighIntensityMixHasHigherMPKI(t *testing.T) {
	run := func(mix string) camps.Results {
		rc := quick(mix, camps.CAMPS)
		rc.WarmupRefs = 40_000 // LM working sets must be cache-resident
		res, err := camps.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hm := run("HM2")
	lm := run("LM3")
	hmMean, lmMean := 0.0, 0.0
	for i := range hm.MPKI {
		hmMean += hm.MPKI[i] / 8
		lmMean += lm.MPKI[i] / 8
	}
	if hmMean <= 2*lmMean {
		t.Fatalf("HM MPKI (%g) not clearly above LM MPKI (%g)", hmMean, lmMean)
	}
}

func TestRunWithCustomReaders(t *testing.T) {
	cfg := camps.DefaultSystem()
	readers := make([]trace.Reader, cfg.Processor.Cores)
	for core := range readers {
		recs := make([]trace.Record, 3000)
		for i := range recs {
			recs[i] = trace.Record{
				Gap:  3,
				Addr: uint64(core)<<32 | uint64(i)*64,
			}
		}
		readers[core] = trace.NewSliceReader(recs)
	}
	res, err := camps.RunContext(context.Background(), camps.RunConfig{
		Scheme:       camps.BASE,
		Readers:      readers,
		WarmupRefs:   100,
		MeasureInstr: 8_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.GeoMeanIPC <= 0 {
		t.Fatal("custom-reader run produced no IPC")
	}
}

func TestRunValidation(t *testing.T) {
	// Mismatched reader count.
	_, err := camps.RunContext(context.Background(), camps.RunConfig{
		Scheme:  camps.BASE,
		Readers: []trace.Reader{trace.NewSliceReader(nil)},
	})
	if err == nil {
		t.Fatal("accepted 1 reader for 8 cores")
	}
	// Broken system config.
	cfg := camps.DefaultSystem()
	cfg.HMC.Vaults = 3
	mix, _ := camps.MixByID("HM1")
	if _, err := camps.RunContext(context.Background(), camps.RunConfig{System: cfg, Scheme: camps.BASE, Mix: mix}); err == nil {
		t.Fatal("accepted invalid system config")
	}
	// Empty mix and no readers.
	if _, err := camps.RunContext(context.Background(), camps.RunConfig{Scheme: camps.BASE}); err == nil {
		t.Fatal("accepted empty mix")
	}
}

func TestSchemesRoundTrip(t *testing.T) {
	if len(camps.Schemes()) != 5 {
		t.Fatal("expected 5 schemes")
	}
	for _, s := range camps.Schemes() {
		got, err := camps.ParseScheme(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
}

func TestMixAccessors(t *testing.T) {
	if len(camps.Mixes()) != 12 {
		t.Fatal("expected 12 mixes")
	}
	if _, err := camps.MixByID("HM1"); err != nil {
		t.Fatal(err)
	}
	if _, err := camps.MixByID("nope"); err == nil {
		t.Fatal("accepted unknown mix")
	}
}

func TestEnergyBreakdownConsistency(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("MX2", camps.BASE))
	if err != nil {
		t.Fatal(err)
	}
	b := res.Energy
	sum := b.Activate + b.Precharge + b.Read + b.Write + b.RowFetch +
		b.RowStore + b.Refresh + b.Buffer + b.Link + b.Background
	if math.Abs(sum-b.Total()) > 1e-6*sum {
		t.Fatalf("breakdown components (%g) do not sum to total (%g)", sum, b.Total())
	}
	if b.RowFetch == 0 {
		t.Fatal("BASE run recorded no row-fetch energy")
	}
	if b.RowStore == 0 {
		t.Fatal("eviction writebacks recorded no row-store energy")
	}
}

func TestExtensionMixesThroughFacade(t *testing.T) {
	ms := camps.ExtensionMixes()
	if len(ms) != 2 || ms[0].ID != "DC1" {
		t.Fatalf("extension mixes = %v", ms)
	}
	if _, err := camps.AnyMixByID("DC2"); err != nil {
		t.Fatal(err)
	}
	rc := camps.RunConfig{
		Scheme:       camps.CAMPSMOD,
		WarmupRefs:   3_000,
		MeasureInstr: 40_000,
	}
	rc.Mix = ms[0]
	res, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if res.GeoMeanIPC <= 0 {
		t.Fatal("DC1 run degenerate")
	}
}

func TestLatencyQuantilesOrdered(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("HM3", camps.MMD))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.AMATp50ps <= res.AMATp95ps && res.AMATp95ps <= res.AMATp99ps) {
		t.Fatalf("quantiles out of order: p50 %g p95 %g p99 %g",
			res.AMATp50ps, res.AMATp95ps, res.AMATp99ps)
	}
	if res.AMATp50ps <= 0 {
		t.Fatal("p50 not positive")
	}
}

func TestPerVaultSummaries(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("MX2", camps.CAMPS))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerVault) != 32 {
		t.Fatalf("per-vault entries = %d, want 32", len(res.PerVault))
	}
	var demand uint64
	for _, v := range res.PerVault {
		demand += v.Demand
	}
	vs := res.VaultStats
	if demand != vs.DemandReads.Value()+vs.DemandWrites.Value() {
		t.Fatalf("per-vault demand %d != aggregate %d",
			demand, vs.DemandReads.Value()+vs.DemandWrites.Value())
	}
}

func TestCacheSummaryRates(t *testing.T) {
	res, err := camps.RunContext(context.Background(), quick("LM4", camps.BASE))
	if err != nil {
		t.Fatal(err)
	}
	c := res.Caches
	for name, rate := range map[string]float64{
		"L1": c.L1HitRate(), "L2": c.L2HitRate(), "L3": c.L3HitRate(),
	} {
		if rate < 0 || rate > 1 {
			t.Fatalf("%s hit rate %g outside [0,1]", name, rate)
		}
	}
	if c.L1Hits == 0 || c.L3Misses == 0 {
		t.Fatal("cache summary counters empty")
	}
}

func TestAllSchemesRunThroughFacade(t *testing.T) {
	for _, s := range camps.AllSchemes() {
		rc := quick("LM1", s)
		rc.MeasureInstr = 25_000
		res, err := camps.RunContext(context.Background(), rc)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.GeoMeanIPC <= 0 {
			t.Fatalf("%v produced no IPC", s)
		}
		if s == camps.NONE && res.PrefetchesIssued != 0 {
			t.Fatalf("NONE issued %d prefetches", res.PrefetchesIssued)
		}
	}
}
