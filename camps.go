// Package camps is a from-scratch reproduction of "CAMPS: Conflict-Aware
// Memory-Side Prefetching Scheme for Hybrid Memory Cube" (Rafique & Zhu,
// ICPP 2018): a cycle-approximate simulator of an 8-core processor with a
// three-level cache hierarchy in front of a 32-vault HMC whose vault
// controllers host memory-side prefetch engines and per-vault prefetch
// buffers.
//
// The package is the public API over the internal substrates: configure a
// run with RunConfig, execute it with RunContext, and read the paper's
// metrics from Results. The five prefetching schemes of the paper's
// evaluation (BASE, BASE-HIT, MMD, CAMPS, CAMPS-MOD) are selected per run.
//
// Quick start:
//
//	mix, _ := camps.MixByID("HM1")
//	res, err := camps.RunContext(context.Background(), camps.RunConfig{
//		Scheme: camps.CAMPSMOD,
//		Mix:    mix,
//	})
//	fmt.Println(res.GeoMeanIPC, res.RowConflictRate)
package camps

import (
	"context"
	"errors"
	"fmt"
	"io"

	"camps/internal/cache"
	"camps/internal/config"
	"camps/internal/cpu"
	"camps/internal/energy"
	"camps/internal/fault"
	"camps/internal/hmc"
	"camps/internal/obs"
	"camps/internal/pfbuffer"
	"camps/internal/prefetch"
	"camps/internal/sim"
	"camps/internal/stats"
	"camps/internal/trace"
	"camps/internal/vault"
	"camps/internal/workload"
)

// Scheme identifies a memory-side prefetching scheme.
type Scheme = prefetch.Scheme

// The five schemes evaluated in the paper, the no-prefetch reference, and
// the extension engines. Any engine added to the prefetch registry is also
// reachable by name through ParseScheme without a constant here.
const (
	BASE       = prefetch.Base
	BASEHIT    = prefetch.BaseHit
	MMD        = prefetch.MMD
	CAMPS      = prefetch.CAMPS
	CAMPSMOD   = prefetch.CAMPSMOD
	NONE       = prefetch.None
	ASD        = prefetch.ASD
	GHB        = prefetch.GHB
	SISB       = prefetch.SISB
	BESTOFFSET = prefetch.BestOffset
	HYBRID     = prefetch.Hybrid
)

// Schemes returns the paper's five schemes in presentation order.
func Schemes() []Scheme { return prefetch.Schemes() }

// AllSchemes returns every registered scheme in registration order,
// including the NONE reference and the extension engines.
func AllSchemes() []Scheme { return prefetch.AllSchemes() }

// SchemeNames returns every registered engine's canonical name in
// registration order (the list CLIs derive their help text from).
func SchemeNames() []string { return prefetch.Names() }

// EngineKnob is one engine-exposed sweep parameter (see EngineKnobs).
type EngineKnob = prefetch.Knob

// EngineKnobs returns the sweepable configuration knobs every registered
// engine exposes, in registration order; campsweep merges these with its
// hardware knobs.
func EngineKnobs() []EngineKnob { return prefetch.EngineKnobs() }

// Hardware policy knobs, re-exported for ablation studies; see the config
// package for semantics.
type (
	// PagePolicy selects open-page (the paper's) or closed-page rows.
	PagePolicy = config.PagePolicy
	// SchedPolicy selects FR-FCFS (the paper's) or FCFS scheduling.
	SchedPolicy = config.SchedPolicy
	// AddressInterleave selects the physical address mapping.
	AddressInterleave = config.AddressInterleave
)

// ParseScheme converts a scheme name ("BASE", "CAMPS-MOD", ...) to a value.
func ParseScheme(name string) (Scheme, error) { return prefetch.ParseScheme(name) }

// SystemConfig is the simulated-system configuration (Table I defaults).
type SystemConfig = config.Config

// DefaultSystem returns the Table I configuration.
func DefaultSystem() SystemConfig { return config.Default() }

// Mix is one multiprogrammed workload (Table II).
type Mix = workload.Mix

// Mixes returns the twelve Table II mixes.
func Mixes() []Mix { return workload.Mixes() }

// MixByID returns a mix by its Table II identifier (e.g. "HM1").
func MixByID(id string) (Mix, error) { return workload.MixByID(id) }

// ExtensionMixes returns the datacenter-style mixes (DC1, DC2) beyond the
// paper's Table II set.
func ExtensionMixes() []Mix { return workload.ExtensionMixes() }

// AnyMixByID resolves both Table II and extension mix identifiers.
func AnyMixByID(id string) (Mix, error) { return workload.AnyMixByID(id) }

// RunConfig describes one simulation run.
type RunConfig struct {
	// System is the hardware configuration; zero value means Table I.
	System SystemConfig
	// Scheme is the prefetching scheme under test.
	Scheme Scheme
	// Mix selects the workload. Exactly one of Mix or Readers is used:
	// Readers, when non-nil, supplies one trace per core directly.
	Mix     Mix
	Readers []trace.Reader
	// Seed decorrelates synthetic traces across runs (default 1).
	Seed uint64
	// WarmupRefs is the number of per-core references run through the
	// caches functionally before timing starts (default 30000), the
	// analogue of the paper's fast-forward + cache warmup.
	WarmupRefs uint64
	// MeasureInstr is the per-core instruction budget of the measured
	// region (default 400000), the analogue of the paper's 800M detailed
	// instructions, scaled to synthetic-trace size.
	MeasureInstr uint64
	// Energy is the energy model; zero value means the default model.
	Energy energy.Model
	// Obs, when non-nil, turns on the observability layer for this run:
	// every subsystem registers its counters/histograms with Obs.Registry,
	// structured events flow to Obs.Tracer, and a registry snapshot tagged
	// "epoch" is appended every EpochInterval of simulated time (plus one
	// tagged "final" after the run drains). One Suite serves exactly one
	// run; the harness gives each parallel cell its own.
	Obs *obs.Suite
	// EpochInterval is the simulated time between epoch snapshots
	// (default 5us when Obs is set; ignored otherwise).
	EpochInterval sim.Time
	// Faults describes the run's deterministic fault environment (link CRC
	// errors, vault stalls, prefetch poisoning, bank blackouts). The zero
	// value injects nothing and leaves results bit-identical to a run
	// without the fault layer. Schedules derive from Seed and Faults.Seed,
	// so the same pair reproduces the same faults exactly.
	Faults fault.Spec
	// CheckInvariants arms the epoch invariant checker: every
	// EpochInterval (default 5us) the memory system's structural
	// invariants are validated, and a violation halts the run with an
	// error matching ErrInvariant instead of producing corrupt results.
	CheckInvariants bool
	// Workers selects the execution engine: 0 or 1 runs the serial event
	// engine (the default); N > 1 shards the vault controllers over N-1
	// worker goroutines coordinated by the caller's goroutine, using the
	// conservative lookahead windows of sim.RunParallel. Results are
	// byte-identical to the serial engine at every worker count (the
	// differential determinism suite enforces this); only wall-clock
	// changes. Values beyond 1+vaults clamp.
	Workers int
}

// FaultSpec re-exports the fault-injection spec for RunConfig.Faults.
type FaultSpec = fault.Spec

// FaultCounts re-exports the per-run fault-injection counters.
type FaultCounts = fault.Counts

// ParseFaultSpec parses the textual fault-spec grammar used by the CLIs'
// -faults flag (e.g. "linkcrc=1e-4,stall=5e-5,bankfail=200us"). Errors
// match ErrBadFaultSpec.
func ParseFaultSpec(text string) (FaultSpec, error) { return fault.ParseSpec(text) }

// FaultGrammar returns the -faults grammar description for CLI help.
func FaultGrammar() string { return fault.Grammar() }

func (rc *RunConfig) applyDefaults() {
	if rc.System.Processor.Cores == 0 {
		rc.System = config.Default()
	}
	if rc.Seed == 0 {
		rc.Seed = 1
	}
	if rc.WarmupRefs == 0 {
		rc.WarmupRefs = 50_000
	}
	if rc.MeasureInstr == 0 {
		rc.MeasureInstr = 400_000
	}
	if rc.Energy == (energy.Model{}) {
		rc.Energy = energy.Default()
	}
	if rc.Obs != nil && rc.EpochInterval <= 0 {
		rc.EpochInterval = 5 * sim.Microsecond
	}
}

// Results carries every metric the paper's figures use.
type Results struct {
	Mix    string
	Scheme Scheme

	// Performance (Figure 5 inputs).
	IPC        []float64 // per core
	GeoMeanIPC float64
	MPKI       []float64 // per core, L3 misses per kilo-instruction

	// Row-buffer behaviour (Figure 6).
	RowHits         uint64
	RowMisses       uint64
	RowConflicts    uint64
	RowConflictRate float64 // conflicts / demand bank accesses

	// Prefetching (Figure 7).
	PrefetchesIssued uint64
	PrefetchAccuracy float64 // fraction of prefetched rows referenced
	LineAccuracy     float64 // fraction of prefetched lines referenced
	BufferHitRate    float64 // demand requests served by the buffer
	// PrefetchTimeliness is the mean delay from a row's insertion to its
	// first demand hit, picoseconds (§2.3's "when to prefetch" measured).
	PrefetchTimeliness float64

	// Latency (Figure 8): mean main-memory read latency in picoseconds,
	// measured from L3-miss issue to data return at the HMC controller,
	// plus distribution quantiles (5 ns resolution).
	AMATps    float64
	AMATp50ps float64
	AMATp95ps float64
	AMATp99ps float64

	// Energy (Figure 9).
	Energy energy.Breakdown

	// Faults counts the injected faults when RunConfig.Faults was enabled
	// (nil on fault-free runs, so fault-free JSON output is unchanged).
	Faults *fault.Counts `json:",omitempty"`

	// Attribution is the per-cause latency breakdown and prefetch efficacy
	// ledger, filled only when the run's Obs suite had attribution enabled
	// (nil otherwise, so existing JSON output is unchanged).
	Attribution *obs.AttributionSummary `json:",omitempty"`

	// Bookkeeping.
	ElapsedSim sim.Time
	// EventsFired counts discrete events the engine executed for the run —
	// the numerator of campbench's events/sec throughput metric. Excluded
	// from JSON so metric exports are unchanged by its introduction.
	EventsFired   uint64 `json:"-"`
	Instructions  uint64
	MemReads      uint64
	MemWrites     uint64
	MSHRCoalesced uint64 // misses merged into an outstanding line fetch
	MSHRStalls    uint64 // misses that waited for a free MSHR entry
	VaultStats    vault.Stats
	BufferStats   pfbuffer.Stats

	// PerVault carries each vault's demand/conflict/buffer counters for
	// load-imbalance analysis (index = vault id).
	PerVault []VaultSummary

	// Caches summarizes hierarchy behaviour (includes warmup accesses).
	Caches CacheSummary
}

// VaultSummary is one vault's headline counters.
type VaultSummary struct {
	Demand     uint64
	BufferHits uint64
	Conflicts  uint64
	Fetches    uint64
	Refreshes  uint64
}

// CacheSummary aggregates the cache hierarchy's behaviour over the run.
type CacheSummary struct {
	L1Hits, L1Misses uint64 // across all private L1s
	L2Hits, L2Misses uint64 // across all private L2s
	L3Hits, L3Misses uint64
}

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func hitRate(h, m uint64) float64 {
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// L1HitRate returns the aggregate L1 hit rate.
func (c CacheSummary) L1HitRate() float64 { return hitRate(c.L1Hits, c.L1Misses) }

// L2HitRate returns the aggregate L2 hit rate (of L1 misses).
func (c CacheSummary) L2HitRate() float64 { return hitRate(c.L2Hits, c.L2Misses) }

// L3HitRate returns the shared L3 hit rate (of L2 misses).
func (c CacheSummary) L3HitRate() float64 { return hitRate(c.L3Hits, c.L3Misses) }

// cubeMemory adapts the HMC cube to the cores' Memory interface.
type cubeMemory struct {
	cube *hmc.Cube
}

func (m cubeMemory) ReadLine(addr uint64, done func(at sim.Time)) {
	m.cube.Access(hmc.Address(addr), false, done)
}

func (m cubeMemory) WriteLine(addr uint64) {
	m.cube.Access(hmc.Address(addr), true, nil)
}

// RunContext executes one simulation under ctx and returns its
// measurements. Cancellation is honored at engine-epoch granularity: a
// daemon watcher polls ctx every EpochInterval of simulated time (default
// 5us) and halts the event engine mid-flight, so a long run stops within
// one epoch of the cancellation instead of draining. A cancelled run
// returns an error wrapping ctx.Err(), so callers can test it with
// errors.Is(err, context.Canceled) or context.DeadlineExceeded.
func RunContext(ctx context.Context, rc RunConfig) (Results, error) {
	if err := ctx.Err(); err != nil {
		return Results{}, fmt.Errorf("camps: run cancelled before start: %w", err)
	}
	rc.applyDefaults()
	if err := rc.System.Validate(); err != nil {
		return Results{}, &apiError{msg: "camps: " + err.Error(), refs: []error{ErrInvalidConfig, err}}
	}
	if err := prefetch.ValidateConfig(rc.System); err != nil {
		return Results{}, &apiError{msg: "camps: " + err.Error(), refs: []error{ErrInvalidConfig, err}}
	}
	if err := rc.Faults.Validate(); err != nil {
		return Results{}, fmt.Errorf("camps: %w", err) // matches ErrBadFaultSpec
	}

	cores := rc.System.Processor.Cores
	readers := rc.Readers
	if readers == nil {
		if len(rc.Mix.Benchmarks) != cores {
			return Results{}, &apiError{
				msg: fmt.Sprintf("camps: mix %q has %d benchmarks, system has %d cores",
					rc.Mix.ID, len(rc.Mix.Benchmarks), cores),
				refs: []error{ErrMixCoreMismatch},
			}
		}
		gens, err := rc.Mix.Generators(rc.Seed)
		if err != nil {
			return Results{}, err
		}
		readers = make([]trace.Reader, len(gens))
		for i, g := range gens {
			readers[i] = g
		}
	} else if len(readers) != cores {
		return Results{}, &apiError{
			msg:  fmt.Sprintf("camps: %d readers for %d cores", len(readers), cores),
			refs: []error{ErrMixCoreMismatch},
		}
	}

	eng := sim.NewEngine()
	var cube *hmc.Cube
	var shardRT *hmc.ShardRuntime
	if nshards := rc.Workers - 1; nshards > 0 {
		if v := rc.System.HMC.Vaults; nshards > v {
			nshards = v
		}
		shardEngs := make([]*sim.Engine, nshards)
		for i := range shardEngs {
			shardEngs[i] = sim.NewEngine()
		}
		cube, shardRT = hmc.NewCubeSharded(eng, rc.System, rc.Scheme,
			shardEngs, hmc.PlanShards(rc.System.HMC.Vaults, nshards))
	} else {
		cube = hmc.NewCube(eng, rc.System, rc.Scheme)
	}
	// Fault injection: all schedules derive from (Seed, Faults.Seed), so
	// reruns with the same pair see identical faults. A disabled spec wires
	// nothing, keeping the fault-free fast path untouched.
	var inj *fault.Injector
	if rc.Faults.Enabled() {
		inj = fault.NewInjector(rc.Faults, rc.Seed)
		cube.SetFaults(inj)
	}
	var chk *sim.Checker
	if rc.CheckInvariants {
		interval := rc.EpochInterval
		if interval <= 0 {
			interval = 5 * sim.Microsecond
		}
		chk = sim.NewChecker(eng, interval)
		chk.Register(cube.Invariants()...)
	}
	hier := cache.NewHierarchy(rc.System)
	// The shared L3 MSHR file sits between the cores and the cube: it
	// coalesces concurrent misses to one line and bounds distinct
	// outstanding fetches.
	mshrs := cache.NewMSHRFile(eng, cubeMemory{cube: cube}, rc.System.L3.MSHRs)
	var mem cpu.Memory = mshrs
	if rc.Obs.AttributionEnabled() {
		// Per-request attribution spans: opened at the MSHR, charged along
		// the link/crossbar/vault path, retired when data returns. The
		// ledger classifies every prefetch's fate inside the vaults.
		mshrs.AttachSpans(rc.Obs.Spans)
		cube.AttachAttribution(rc.Obs.Spans, rc.Obs.Ledger)
		if chk != nil {
			chk.Register(sim.Invariant{Name: "span-attribution", Check: rc.Obs.Spans.CheckInvariant})
		}
	}

	// Functional cache warmup: consume WarmupRefs records per core through
	// the hierarchy with no timing, discarding memory traffic.
	for core := 0; core < cores; core++ {
		if err := ctx.Err(); err != nil {
			return Results{}, fmt.Errorf("camps: run cancelled during warmup: %w", err)
		}
		for i := uint64(0); i < rc.WarmupRefs; i++ {
			rec, err := readers[core].Next()
			if errors.Is(err, io.EOF) {
				break // finite reader exhausted: measured region sees EOF
			}
			if err != nil {
				// A malformed or truncated trace must fail the run, not
				// silently shrink the warmup.
				return Results{}, fmt.Errorf("camps: core %d warmup trace: %w", core, err)
			}
			hier.Access(core, rec.Addr, rec.Write)
		}
	}
	l3Base := make([]uint64, cores)
	for core := 0; core < cores; core++ {
		l3Base[core] = hier.L3Misses(core)
	}

	remaining := cores
	onFinish := func(int) {
		remaining--
		if remaining == 0 {
			eng.Halt()
		}
	}
	cpus := make([]*cpu.Core, cores)
	for core := 0; core < cores; core++ {
		cpus[core] = cpu.NewCore(eng, rc.System, core, readers[core], hier, mem,
			rc.MeasureInstr, onFinish)
	}
	if rc.Obs != nil {
		cube.Instrument(rc.Obs.Registry, rc.Obs.Tracer)
		inj.Instrument(rc.Obs.Registry, rc.Obs.Tracer) // nil-safe no-op when fault-free
		hier.Instrument(rc.Obs.Registry)
		mshrs.Instrument(rc.Obs.Registry, rc.Obs.Tracer)
		for _, c := range cpus {
			c.Instrument(rc.Obs.Registry)
		}
		// Epoch snapshots ride a daemon ticker: metrics collection must
		// never extend the simulation past its natural end.
		sim.NewDaemonTicker(eng, rc.EpochInterval, func() {
			rc.Obs.Snap("epoch", int64(eng.Now()))
			rc.Obs.Tracer.Emit(obs.Event{At: int64(eng.Now()), Type: obs.EvEpoch, Vault: -1})
		})
	}
	if ctx.Done() != nil {
		// Cancellation hook: poll the context on a daemon ticker so a
		// cancelled run halts within one epoch of simulated time. Daemon
		// scheduling guarantees the watcher never extends a run that
		// drains naturally.
		interval := rc.EpochInterval
		if interval <= 0 {
			interval = 5 * sim.Microsecond
		}
		sim.NewHaltWatcher(eng, interval, func() bool { return ctx.Err() != nil })
	}
	// Parallel mode: give each vault shard private observability
	// instances (tracer ring, prefetch ledger) and pin the span pool so
	// no obs structure is written from two shards. Everything folds back
	// into the suite after the run.
	var shardTracers []*obs.Tracer
	var shardLedgers []*obs.PrefetchLedger
	if shardRT != nil {
		if rc.Obs != nil {
			shardTracers = rc.Obs.ShardTracers(shardRT.Shards())
			shardLedgers = rc.Obs.ShardLedgers(shardRT.Shards())
			cube.SetShardObs(shardTracers, shardLedgers)
		}
		if rc.Obs.AttributionEnabled() {
			// Far above the structural in-flight bound (MSHR entries plus
			// coalesced secondaries and overflow); Begin fails loudly if
			// the bound is ever wrong.
			rc.Obs.Spans.Reserve(1 << 14)
		}
	}
	for _, c := range cpus {
		c.Start()
	}
	if shardRT != nil {
		// Window = half the minimum cross-shard response latency: the
		// skewed pipeline needs no request-side lookahead at all, and
		// responses come due at least two windows after the vault window
		// that produced them. See sim.RunParallel and DESIGN.md §10.
		sim.RunParallel(ctx, eng, shardRT.Engines(), hmc.ResponseLookahead(rc.System)/2, shardRT)
	} else {
		eng.Run()
	}
	if shardRT != nil && rc.Obs != nil {
		rc.Obs.MergeShardTracers(shardTracers)
		// The shard ledgers are NOT merged here: cube.Flush() below still
		// classifies every row resident in a prefetch buffer at halt, and
		// the buffers write those verdicts into their attached (per-shard)
		// ledgers. Merging happens after Flush, right before the summary
		// is built, so the parallel ledger covers exactly what serial's
		// does.
	}
	if err := ctx.Err(); err != nil {
		return Results{}, fmt.Errorf("camps: run cancelled at %v simulated: %w", eng.Now(), err)
	}
	if chk != nil {
		chk.Final()
		if err := chk.Err(); err != nil {
			return Results{}, fmt.Errorf("camps: %w", err) // matches ErrInvariant
		}
	}

	res := Results{
		Mix:         rc.Mix.ID,
		Scheme:      rc.Scheme,
		ElapsedSim:  eng.Now(),
		EventsFired: eng.Fired(),
	}
	if inj != nil {
		counts := inj.Counts()
		res.Faults = &counts
	}
	for core, c := range cpus {
		if err := c.Err(); err != nil {
			return Results{}, err
		}
		if !c.Finished() {
			return Results{}, fmt.Errorf("camps: core %d never completed its measured region", core)
		}
		res.IPC = append(res.IPC, c.IPC())
		instr := c.Instructions()
		res.Instructions += instr
		res.MemReads += c.MemReads()
		res.MemWrites += c.MemWrites()
		misses := hier.L3Misses(core) - l3Base[core]
		res.MPKI = append(res.MPKI, float64(misses)/float64(instr)*1000)
	}
	res.GeoMeanIPC = stats.GeoMean(res.IPC)

	cube.Flush()
	if shardRT != nil && rc.Obs != nil {
		// Deferred from the post-run merge above: Flush has now recorded
		// the halt-resident buffer rows into the per-shard ledgers.
		rc.Obs.MergeShardLedgers(shardLedgers)
	}
	vs := cube.VaultStats()
	res.VaultStats = vs
	for i := 0; i < cube.Vaults(); i++ {
		s := cube.Vault(i).Stats()
		res.PerVault = append(res.PerVault, VaultSummary{
			Demand:     s.DemandReads.Value() + s.DemandWrites.Value(),
			BufferHits: s.BufferHits.Value(),
			Conflicts:  s.RowConflicts.Value(),
			Fetches:    s.FetchesIssued.Value(),
			Refreshes:  s.Refreshes.Value(),
		})
	}
	res.RowHits = vs.RowHits.Value()
	res.RowMisses = vs.RowMisses.Value()
	res.RowConflicts = vs.RowConflicts.Value()
	res.RowConflictRate = vs.ConflictRate()
	res.PrefetchesIssued = vs.FetchesIssued.Value()

	bs := cube.BufferStats()
	res.BufferStats = bs
	res.PrefetchAccuracy = bs.RowAccuracy()
	res.LineAccuracy = bs.LineAccuracy(rc.System.LinesPerRow())
	res.PrefetchTimeliness = bs.FirstUseDelay.Mean()
	if demand := vs.BufferHits.Value() + vs.BufferMisses.Value(); demand > 0 {
		res.BufferHitRate = float64(vs.BufferHits.Value()) / float64(demand)
	}

	res.MSHRCoalesced = mshrs.Coalesced()
	res.MSHRStalls = mshrs.Stalls()
	for core := 0; core < cores; core++ {
		res.Caches.L1Hits += hier.L1(core).Hits()
		res.Caches.L1Misses += hier.L1(core).Misses()
		res.Caches.L2Hits += hier.L2(core).Hits()
		res.Caches.L2Misses += hier.L2(core).Misses()
	}
	res.Caches.L3Hits = hier.L3().Hits()
	res.Caches.L3Misses = hier.L3().Misses()

	res.AMATps = cube.ReadAMAT().Mean()
	res.AMATp50ps = cube.ReadLatencyQuantile(0.50)
	res.AMATp95ps = cube.ReadLatencyQuantile(0.95)
	res.AMATp99ps = cube.ReadLatencyQuantile(0.99)

	var linkBytes uint64
	var linkSlept sim.Time
	for _, ls := range cube.LinkStats() {
		linkBytes += ls.ReqBytes + ls.RespBytes
		linkSlept += ls.ReqSlept + ls.RespSlept
	}
	// Each link has two directions; awake time = total direction-time
	// minus time spent in the low-power state.
	linkAwake := eng.Now()*sim.Time(2*rc.System.Links.Count) - linkSlept
	res.Energy = rc.Energy.Estimate(vs.BankOps, vs.BufferHits.Value(), linkBytes, linkAwake, eng.Now())

	if rc.Obs != nil {
		// Attribution summary after Flush so the ledger covers rows still
		// resident at end of run.
		res.Attribution = rc.Obs.Attribution()
		// The final snapshot lands after Flush, so it includes end-of-run
		// eviction/writeback accounting the epoch snapshots cannot see.
		rc.Obs.Snap("final", int64(eng.Now()))
	}
	return res, nil
}
