package camps_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"camps"
	"camps/internal/obs"
	"camps/internal/report"
	"camps/internal/sim"
)

// TestAttributionEndToEnd runs a small simulation with latency
// attribution enabled and the epoch invariant checker armed, then checks
// the acceptance contract: every retired request's cause columns sum to
// its end-to-end latency, the prefetch ledger classifies real traffic,
// and the summary renders and exports.
func TestAttributionEndToEnd(t *testing.T) {
	rc := quick("HM1", camps.CAMPSMOD)
	suite := obs.NewSuite(0)
	suite.EnableAttribution(camps.CAMPSMOD.String())
	rc.Obs = suite
	rc.EpochInterval = 2 * sim.Microsecond
	rc.CheckInvariants = true // includes the span-attribution invariant
	res, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}

	sum := res.Attribution
	if sum == nil {
		t.Fatal("Results.Attribution nil with attribution enabled")
	}
	if sum.SpansRetired == 0 || sum.SpansRetired > sum.SpansStarted {
		t.Fatalf("spans retired/started = %d/%d", sum.SpansRetired, sum.SpansStarted)
	}

	// The core acceptance invariant: cause columns sum exactly to the
	// end-to-end total — no latency is lost or double-counted.
	var causeSum uint64
	for _, cb := range sum.Causes {
		causeSum += cb.TotalPs
	}
	if causeSum != sum.E2ETotalPs {
		t.Errorf("cause totals sum to %d ps, end-to-end total is %d ps", causeSum, sum.E2ETotalPs)
	}
	if sum.E2ETotalPs == 0 {
		t.Error("no latency attributed over a full run")
	}
	for _, want := range []string{"queue", "link", "service"} {
		found := false
		for _, cb := range sum.Causes {
			if cb.Cause == want && cb.TotalPs > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("cause %q attributed no time over a full run", want)
		}
	}

	// CAMPS-MOD prefetches on this mix, so the ledger must classify rows
	// and the conflict heatmap must cover the cube's vaults.
	if lg := sum.Ledger; lg == nil || lg.Classified() == 0 {
		t.Error("prefetch ledger empty under CAMPS-MOD on HM1")
	} else if lg.Scheme != camps.CAMPSMOD.String() {
		t.Errorf("ledger scheme = %q", lg.Scheme)
	}
	if len(sum.VaultConflictPs) == 0 {
		t.Error("vault conflict heatmap empty")
	}

	// Attribution totals surface as registry metrics too.
	last := suite.Snapshots()[len(suite.Snapshots())-1]
	if got := last.Counter(obs.MetricSpanRetired); got != sum.SpansRetired {
		t.Errorf("%s = %d, want %d", obs.MetricSpanRetired, got, sum.SpansRetired)
	}
	if hs, ok := last.Histograms[obs.MetricSpanE2EHist]; !ok || hs.Count == 0 {
		t.Error("span e2e latency histogram empty or missing")
	}

	// Span retirements feed the tracer as EvSpan duration events.
	spanEvents := 0
	for _, ev := range suite.Tracer.Events() {
		if ev.Type == obs.EvSpan {
			spanEvents++
			if ev.Arg <= 0 {
				t.Fatalf("span event with non-positive latency: %+v", ev)
			}
		}
	}
	if spanEvents == 0 {
		t.Error("no EvSpan events in the trace window")
	}

	// The CLI table renders with the headline sections present.
	text := report.Attribution(sum)
	for _, want := range []string{"latency attribution", "end-to-end", "prefetch efficacy", "bank-conflict heatmap"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}

	// The summary round-trips through JSON (the -attr-out format).
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back obs.AttributionSummary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.E2ETotalPs != sum.E2ETotalPs || back.Ledger.Classified() != sum.Ledger.Classified() {
		t.Error("attribution summary does not round-trip through JSON")
	}
}

// TestAttributionDoesNotPerturbSimulation: attribution is pure
// observation — enabling it must not change any simulated outcome.
func TestAttributionDoesNotPerturbSimulation(t *testing.T) {
	plain, err := camps.RunContext(context.Background(), quick("MX1", camps.CAMPSMOD))
	if err != nil {
		t.Fatal(err)
	}
	rc := quick("MX1", camps.CAMPSMOD)
	suite := obs.NewSuite(0)
	suite.EnableAttribution(camps.CAMPSMOD.String())
	rc.Obs = suite
	attributed, err := camps.RunContext(context.Background(), rc)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GeoMeanIPC != attributed.GeoMeanIPC ||
		plain.RowConflicts != attributed.RowConflicts ||
		plain.ElapsedSim != attributed.ElapsedSim ||
		plain.AMATps != attributed.AMATps {
		t.Errorf("attribution changed simulation results: ipc %g vs %g, conflicts %d vs %d, time %d vs %d, amat %g vs %g",
			plain.GeoMeanIPC, attributed.GeoMeanIPC, plain.RowConflicts, attributed.RowConflicts,
			plain.ElapsedSim, attributed.ElapsedSim, plain.AMATps, attributed.AMATps)
	}
}

// TestMetricsStreamEndToEnd is the -serve-metrics acceptance test: a run
// publishing epoch snapshots through obs.StartStream must deliver at
// least one epoch snapshot to an SSE client, exactly as campsim wires it.
func TestMetricsStreamEndToEnd(t *testing.T) {
	srv, ok := obs.StartStream("127.0.0.1:0", nil)
	if !ok {
		t.Fatal("StartStream failed on an ephemeral port")
	}

	rc := quick("HM1", camps.CAMPSMOD)
	suite := obs.NewSuite(0)
	suite.OnSnapshot = srv.Publish
	rc.Obs = suite
	rc.EpochInterval = 2 * sim.Microsecond
	if _, err := camps.RunContext(context.Background(), rc); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)

	// The backlog replays the run's most recent snapshots; the first
	// frame must parse as an epoch snapshot with simulator counters.
	var event, data string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		if line == "" {
			break
		}
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if event != "epoch" && event != "final" {
		t.Errorf("first streamed event = %q, want epoch or final", event)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(data), &snap); err != nil {
		t.Fatalf("streamed data not a snapshot: %v", err)
	}
	if snap.AtPs <= 0 || len(snap.Counters) == 0 {
		t.Errorf("streamed snapshot empty: at=%d, %d counters", snap.AtPs, len(snap.Counters))
	}
}
